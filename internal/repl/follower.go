package repl

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/storage"
	"repro/internal/wal"
)

// Default tuning for FollowerOptions zero values.
const (
	DefaultReconnectMin = 100 * time.Millisecond
	DefaultReconnectMax = 5 * time.Second
	DefaultReadTimeout  = 2 * time.Second
)

// FollowerOptions tunes a replication follower.
type FollowerOptions struct {
	// Addr is the primary's replication address.
	Addr string
	// Dial overrides how connections are made; tests inject faulty
	// transports here. Nil means a plain TCP dial with ReadTimeout as the
	// dial timeout.
	Dial func(addr string) (net.Conn, error)
	// ReconnectMin/ReconnectMax bound the jittered exponential backoff
	// between connection attempts.
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// ReadTimeout bounds silence on the link. The primary's heartbeat must
	// fit inside it; a healthy idle link never trips it.
	ReadTimeout time.Duration
	// SendTimeout bounds handshake and ack writes.
	SendTimeout time.Duration
}

func (o *FollowerOptions) fill() {
	if o.ReconnectMin <= 0 {
		o.ReconnectMin = DefaultReconnectMin
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = DefaultReconnectMax
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = DefaultReadTimeout
	}
	if o.SendTimeout <= 0 {
		o.SendTimeout = DefaultSendTimeout
	}
	if o.Dial == nil {
		timeout := o.ReadTimeout
		o.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
}

// Quarantine is the latched divergence state of a follower: once set it never
// clears, mirroring the WAL failure latch. Seq is the last sequence the
// follower applied cleanly — the snapshot it keeps serving.
type Quarantine struct {
	Seq    uint64
	Reason string
}

// FollowerStatus snapshots a follower for /stats and narration.
type FollowerStatus struct {
	AppliedSeq       uint64
	PrimarySeq       uint64 // last seq the primary reported (welcome/heartbeat)
	Lag              uint64 // PrimarySeq - AppliedSeq when positive
	Connected        bool
	Reconnects       uint64 // completed reconnections after the first session
	Records          uint64 // records applied over the follower's lifetime
	Duplicates       uint64 // re-shipped records skipped (seq <= applied)
	Reseeds          uint64 // checkpoint re-seeds accepted
	Quarantined      bool
	QuarantineSeq    uint64
	QuarantineReason string
	Catchup          storage.RecoveryReport // what the current/last session shipped
}

// Follower keeps a read-only database converged with a primary's record
// stream. Create with StartFollower; stop with Close. A quarantined follower
// stops replicating permanently but its database keeps serving the last
// consistent snapshot.
type Follower struct {
	db   *storage.Database
	opts FollowerOptions

	applied    atomic.Uint64
	primarySeq atomic.Uint64
	connected  atomic.Bool
	reconnects atomic.Uint64
	records    atomic.Uint64
	duplicates atomic.Uint64
	reseeds    atomic.Uint64
	quar       atomic.Pointer[Quarantine]

	closeCh chan struct{}
	closed  atomic.Bool
	wg      sync.WaitGroup

	mu      sync.Mutex
	conn    net.Conn
	catchup storage.RecoveryReport
}

// StartFollower marks db read-only and begins replicating from the primary,
// reconnecting with jittered exponential backoff until Close or quarantine.
// The database must be in-memory: its contents belong to the primary's log.
func StartFollower(db *storage.Database, opts FollowerOptions) (*Follower, error) {
	if db.Durable() {
		return nil, errors.New("repl: a follower database must not have its own WAL; it replays the primary's")
	}
	if opts.Addr == "" && opts.Dial == nil {
		return nil, errors.New("repl: follower needs a primary address")
	}
	opts.fill()
	f := &Follower{db: db, opts: opts, closeCh: make(chan struct{})}
	db.SetReadOnly(true)
	f.applied.Store(db.Snapshot().Seq())
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		f.run()
	}()
	return f, nil
}

// run is the reconnect loop: dial, run a session, back off, repeat — until
// Close, or until divergence latches the quarantine.
func (f *Follower) run() {
	delay := f.opts.ReconnectMin
	first := true
	for {
		if f.closed.Load() || f.quar.Load() != nil {
			return
		}
		conn, err := f.opts.Dial(f.opts.Addr)
		if err == nil {
			if !first {
				f.reconnects.Add(1)
			}
			first = false
			f.mu.Lock()
			f.conn = conn
			f.mu.Unlock()
			f.connected.Store(true)
			healthy := f.session(conn)
			f.connected.Store(false)
			f.mu.Lock()
			f.conn = nil
			f.mu.Unlock()
			conn.Close()
			if healthy {
				delay = f.opts.ReconnectMin
			}
		}
		if f.closed.Load() || f.quar.Load() != nil {
			return
		}
		// Jittered exponential backoff: uniformly within [delay/2, delay],
		// so a herd of followers never reconnects in lockstep.
		sleep := delay/2 + time.Duration(rand.Int64N(int64(delay/2)+1))
		select {
		case <-f.closeCh:
			return
		case <-time.After(sleep):
		}
		if delay *= 2; delay > f.opts.ReconnectMax {
			delay = f.opts.ReconnectMax
		}
	}
}

// session runs one connection: handshake with the applied seq, then apply
// whatever arrives until the link breaks (return: reconnect) or diverges
// (quarantine latches; return). Reports whether the session made progress,
// which resets the backoff.
func (f *Follower) session(conn net.Conn) (healthy bool) {
	var scratch, payload []byte
	applied := f.applied.Load()
	payload = appendMessage(payload[:0], msgHandshake, nil,
		protoVersion, storage.SchemaFingerprint(f.db), applied)
	if sendMessage(conn, f.opts.SendTimeout, &scratch, payload) != nil {
		return false
	}
	f.mu.Lock()
	f.catchup = storage.RecoveryReport{}
	f.mu.Unlock()
	sc := wal.NewFrameScanner(deadlineReader{conn, f.opts.ReadTimeout})
	for sc.Scan() {
		msg, err := parseMessage(sc.Frame().Payload)
		if err != nil {
			f.quarantine(fmt.Sprintf("the primary sent something I cannot parse: %v", err))
			return healthy
		}
		switch msg.kind {
		case msgWelcome:
			if msg.a != protoVersion {
				f.quarantine(fmt.Sprintf("the primary speaks replication protocol version %d; I speak %d", msg.a, protoVersion))
				return healthy
			}
			if fp := storage.SchemaFingerprint(f.db); msg.b != fp {
				f.quarantine("the primary's schema differs from mine; I cannot apply its log")
				return healthy
			}
			f.notePrimarySeq(msg.c)
			healthy = true
		case msgReject:
			f.quarantine("the primary refused me: " + string(msg.body))
			return healthy
		case msgCheckpoint:
			floor, err := storage.CheckpointFloor(msg.body)
			if err != nil {
				f.quarantine(fmt.Sprintf("the primary shipped a checkpoint I cannot read: %v", err))
				return healthy
			}
			if cur := f.applied.Load(); floor < cur {
				f.quarantine(fmt.Sprintf("the primary offered a checkpoint at sequence %d while I stand at %d; our histories diverged", floor, cur))
				return healthy
			}
			_, rows, err := f.db.LoadReplicatedCheckpoint(msg.body)
			if err != nil {
				f.quarantine(fmt.Sprintf("the primary's checkpoint failed to load: %v", err))
				return healthy
			}
			f.applied.Store(floor)
			f.reseeds.Add(1)
			f.notePrimarySeq(floor)
			f.mu.Lock()
			f.catchup.CheckpointRows = rows
			f.catchup.CheckpointSeq = floor
			if f.catchup.LastSeq < floor {
				f.catchup.LastSeq = floor
			}
			f.mu.Unlock()
			if !f.sendAck(conn, &scratch, floor) {
				return healthy
			}
		case msgRecord:
			seq, ok := storage.RecordSeq(msg.body)
			if !ok {
				f.quarantine("the primary shipped a record with no sequence")
				return healthy
			}
			cur := f.applied.Load()
			if seq <= cur {
				f.duplicates.Add(1)
				continue
			}
			if seq != cur+1 {
				f.quarantine(fmt.Sprintf("sequence gap: record %d arrived while I stood at %d", seq, cur))
				return healthy
			}
			_, ops, err := f.db.ApplyReplicatedRecord(msg.body)
			if err != nil {
				f.quarantine(fmt.Sprintf("record %d failed to apply: %v", seq, err))
				return healthy
			}
			f.applied.Store(seq)
			f.records.Add(1)
			f.notePrimarySeq(seq)
			f.mu.Lock()
			if f.catchup.FirstSeq == 0 {
				f.catchup.FirstSeq = seq
			}
			f.catchup.LastSeq = seq
			f.catchup.ReplayedBatches++
			f.catchup.ReplayedOps += ops
			f.mu.Unlock()
			healthy = true
			if !f.sendAck(conn, &scratch, seq) {
				return healthy
			}
		case msgHeartbeat:
			f.notePrimarySeq(msg.a)
			if !f.sendAck(conn, &scratch, f.applied.Load()) {
				return healthy
			}
		default:
			f.quarantine(fmt.Sprintf("the primary sent a %q frame I did not expect", msg.kind))
			return healthy
		}
	}
	// The scan ended. A corrupt frame is divergence — the stream can no
	// longer be trusted at this sequence. A severed or silent link is not:
	// reconnect and resume from the applied sequence.
	var fe *wal.FrameError
	if err := sc.Err(); errors.As(err, &fe) && fe.Corrupt() {
		f.quarantine(fmt.Sprintf("the replication stream corrupted in flight (%s)", fe.Reason))
	}
	return healthy
}

func (f *Follower) sendAck(conn net.Conn, scratch *[]byte, seq uint64) bool {
	payload := appendMessage(nil, msgAck, nil, seq)
	return sendMessage(conn, f.opts.SendTimeout, scratch, payload) == nil
}

func (f *Follower) notePrimarySeq(seq uint64) {
	for {
		cur := f.primarySeq.Load()
		if seq <= cur || f.primarySeq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// quarantine latches the divergence state; only the first cause sticks.
func (f *Follower) quarantine(reason string) {
	q := &Quarantine{Seq: f.applied.Load(), Reason: reason}
	f.quar.CompareAndSwap(nil, q)
}

// Quarantined returns the latched divergence state, or nil while healthy.
func (f *Follower) Quarantined() *Quarantine { return f.quar.Load() }

// Status snapshots the follower's replication state.
func (f *Follower) Status() FollowerStatus {
	st := FollowerStatus{
		AppliedSeq: f.applied.Load(),
		PrimarySeq: f.primarySeq.Load(),
		Connected:  f.connected.Load(),
		Reconnects: f.reconnects.Load(),
		Records:    f.records.Load(),
		Duplicates: f.duplicates.Load(),
		Reseeds:    f.reseeds.Load(),
	}
	if st.PrimarySeq > st.AppliedSeq {
		st.Lag = st.PrimarySeq - st.AppliedSeq
	}
	if q := f.quar.Load(); q != nil {
		st.Quarantined = true
		st.QuarantineSeq = q.Seq
		st.QuarantineReason = q.Reason
	}
	f.mu.Lock()
	st.Catchup = f.catchup
	f.mu.Unlock()
	return st
}

// Close stops replicating and waits for the follower's goroutine to exit.
// The database stays read-only, serving its last applied snapshot.
func (f *Follower) Close() error {
	if !f.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(f.closeCh)
	f.mu.Lock()
	if f.conn != nil {
		f.conn.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
	return nil
}
