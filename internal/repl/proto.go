// Package repl implements WAL-shipping replication: a primary streams the
// committed records its write-ahead log fsyncs — the exact CRC32C-framed
// payloads, tagged with their sequence — to N followers over a small
// length-prefixed TCP protocol, and each follower applies them through the
// same record-atomic replay path crash recovery uses, publishing one MVCC
// version per record. A follower is therefore always at some consistent
// snapshot @seq and can serve read-only traffic, narrating how far behind
// the primary it stands.
//
// Robustness is the design center, not the transport:
//
//   - Replication is asynchronous and pull-shaped. The WAL itself is the
//     outbox: the primary keeps only a bounded in-memory ring of recent
//     records, and a follower that falls off it is re-fed from the
//     checkpoint segment plus the log. Commits never wait for a follower.
//   - Every send carries a deadline; a wedged follower trips it and is
//     dropped, never stalling the sender goroutine indefinitely.
//   - Followers reconnect with jittered exponential backoff, resuming from
//     their applied sequence via the handshake.
//   - Divergence — a sequence gap, a corrupt frame, a checkpoint behind the
//     follower's own state, a record that fails to apply — latches the
//     follower into a quarantine mirroring the WAL failure latch: it stops
//     applying, keeps serving its last consistent snapshot, and narrates
//     why. A severed or silent link, by contrast, is merely retried.
//
// Wire format: every message is one wal frame ([4B length][4B CRC32C]
// [payload]); the payload's first byte is the message kind, followed by
// uvarint fields and/or an opaque body. Corruption anywhere therefore
// surfaces as a checksum mismatch, which the follower treats as divergence.
package repl

import (
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"repro/internal/wal"
)

// protoVersion gates the handshake; both ends must speak the same version.
const protoVersion = 1

// Message kinds (the first payload byte of every frame).
const (
	msgHandshake  = 'H' // follower → primary: version, schema fingerprint, applied seq
	msgWelcome    = 'W' // primary → follower: version, schema fingerprint, last committed seq
	msgCheckpoint = 'C' // primary → follower: raw checkpoint segment (re-seed below the floor)
	msgRecord     = 'R' // primary → follower: one committed WAL record payload
	msgHeartbeat  = 'B' // primary → follower: last committed seq (lag without traffic)
	msgAck        = 'A' // follower → primary: applied seq
	msgReject     = 'E' // primary → follower: terminal refusal, body is the reason
)

// message is a decoded protocol frame. The uvarint fields a, b, c mean, per
// kind: H/W carry (version, fingerprint, seq); B and A carry (seq) in a.
// body is the opaque payload of C (checkpoint bytes), R (record), E (reason).
type message struct {
	kind    byte
	a, b, c uint64
	body    []byte
}

// uvarintCount is how many leading uvarint fields each kind carries.
func uvarintCount(kind byte) int {
	switch kind {
	case msgHandshake, msgWelcome:
		return 3
	case msgHeartbeat, msgAck:
		return 1
	default:
		return 0
	}
}

// parseMessage decodes one frame payload. Unknown kinds and short fields are
// errors — on the follower side they count as divergence, not damage to skip.
func parseMessage(payload []byte) (message, error) {
	if len(payload) == 0 {
		return message{}, fmt.Errorf("repl: empty message")
	}
	m := message{kind: payload[0]}
	switch m.kind {
	case msgHandshake, msgWelcome, msgCheckpoint, msgRecord, msgHeartbeat, msgAck, msgReject:
	default:
		return message{}, fmt.Errorf("repl: unknown message kind %q", m.kind)
	}
	rest := payload[1:]
	fields := [3]*uint64{&m.a, &m.b, &m.c}
	for i := 0; i < uvarintCount(m.kind); i++ {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return message{}, fmt.Errorf("repl: message %q field %d is malformed", m.kind, i)
		}
		*fields[i] = v
		rest = rest[n:]
	}
	m.body = rest
	return m, nil
}

// appendMessage encodes kind + uvarint fields + body into buf.
func appendMessage(buf []byte, kind byte, body []byte, fields ...uint64) []byte {
	buf = append(buf, kind)
	for _, v := range fields {
		buf = binary.AppendUvarint(buf, v)
	}
	return append(buf, body...)
}

// sendMessage frames payload and writes it with a deadline. scratch is
// reused across calls so steady-state sends do not allocate.
func sendMessage(conn net.Conn, timeout time.Duration, scratch *[]byte, payload []byte) error {
	*scratch = wal.AppendRecord((*scratch)[:0], payload)
	if timeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
	}
	_, err := conn.Write(*scratch)
	return err
}

// deadlineReader refreshes a read deadline before every Read, so a frame
// scanner over a link fails after `timeout` of silence instead of blocking
// forever. Heartbeats keep a healthy idle link under the limit.
type deadlineReader struct {
	conn    net.Conn
	timeout time.Duration
}

func (r deadlineReader) Read(p []byte) (int, error) {
	if r.timeout > 0 {
		if err := r.conn.SetReadDeadline(time.Now().Add(r.timeout)); err != nil {
			return 0, err
		}
	}
	return r.conn.Read(p)
}
