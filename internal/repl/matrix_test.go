package repl

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/storage"
	"repro/internal/wal"
)

// recorder captures every byte a connection delivers to its reader.
type recorder struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (r *recorder) bytes() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte(nil), r.buf.Bytes()...)
}

type recordingConn struct {
	net.Conn
	rec *recorder
}

func (c recordingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.rec.mu.Lock()
		c.rec.buf.Write(p[:n])
		c.rec.mu.Unlock()
	}
	return n, err
}

// faultDial wraps the i-th connection attempt with plans[i]; attempts past
// the last plan are clean. Faults are therefore one-shot per schedule: the
// follower's reconnect sees an honest link.
func faultDial(plans ...FaultPlan) func(addr string) (net.Conn, error) {
	var mu sync.Mutex
	attempt := 0
	return func(addr string) (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		i := attempt
		attempt++
		mu.Unlock()
		if i < len(plans) {
			return NewFaultConn(conn, plans[i]), nil
		}
		return conn, nil
	}
}

// frameSpan locates one frame in the recorded clean stream.
type frameSpan struct {
	kind       byte
	start, end int64 // [start, end) in clean-stream byte offsets
}

func parseSpans(t *testing.T, stream []byte) []frameSpan {
	t.Helper()
	var spans []frameSpan
	sc := wal.NewFrameScanner(bytes.NewReader(stream))
	for sc.Scan() {
		end := sc.Offset()
		payload := sc.Frame().Payload
		spans = append(spans, frameSpan{
			kind:  payload[0],
			start: end - int64(len(payload)) - 8,
			end:   end,
		})
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("recorded stream does not parse: %v", err)
	}
	return spans
}

// TestPartitionMatrix drives every scripted transport fault against a live
// primary/follower pair and accepts exactly two outcomes: byte-identical
// convergence at the primary's sequence, or a latched quarantine with a
// narrated cause. Any third state — wedged, silently diverged, crashed —
// fails the schedule.
func TestPartitionMatrix(t *testing.T) {
	defer leakcheck.Check(t)()

	// Primary state: 3 rows below a checkpoint, 5 above it, so catch-up
	// exercises both the segment re-seed and the record stream.
	pdb := newPrimaryDB(t)
	for i := 1; i <= 3; i++ {
		insRow(t, pdb, i)
	}
	if err := pdb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 4; i <= 8; i++ {
		insRow(t, pdb, i)
	}
	const lastSeq = 8
	p, addr := startPrimary(t, pdb, PrimaryOptions{
		Heartbeat:   500 * time.Millisecond,
		SendTimeout: 2 * time.Second,
	})
	defer p.Close()
	want := dump(pdb)

	// Probe run: record the clean catch-up stream so fault offsets can be
	// aimed at specific frames of a byte-identical replay.
	rec := &recorder{}
	probeOpts := fastFollowerOpts(addr)
	probeOpts.Dial = func(a string) (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", a, time.Second)
		if err != nil {
			return nil, err
		}
		return recordingConn{conn, rec}, nil
	}
	probeDB := newReplDB(t)
	probe, err := StartFollower(probeDB, probeOpts)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "probe convergence", func() bool {
		return probe.Status().AppliedSeq == lastSeq
	})
	probe.Close()
	spans := parseSpans(t, rec.bytes())
	if len(spans) < 3 || spans[0].kind != msgWelcome || spans[1].kind != msgCheckpoint {
		t.Fatalf("unexpected probe stream shape: %+v", spans)
	}

	type schedule struct {
		name string
		plan FaultPlan
		// expect is "converge", "quarantine", or "either"; quarantine
		// schedules also pin a substring of the narrated cause.
		expect string
		reason string
	}
	var schedules []schedule
	for i, sp := range spans {
		kindName := fmt.Sprintf("%c%d", sp.kind, i)
		cut := NoFaults()
		cut.CutReadAt = sp.start
		schedules = append(schedules, schedule{
			name: "cut-at-boundary-" + kindName, plan: cut, expect: "converge"})
		mid := NoFaults()
		mid.CutReadAt = sp.start + 5
		schedules = append(schedules, schedule{
			name: "cut-mid-frame-" + kindName, plan: mid, expect: "converge"})
		cor := NoFaults()
		cor.CorruptReadAt = sp.start + 8 // first payload byte
		cor.CorruptMask = 0x40
		schedules = append(schedules, schedule{
			name: "corrupt-" + kindName, plan: cor,
			expect: "quarantine", reason: "corrupted in flight (checksum mismatch)"})
		dup := NoFaults()
		dup.DupReadFrom, dup.DupReadTo = sp.start, sp.end
		schedules = append(schedules, schedule{
			name: "duplicate-" + kindName, plan: dup, expect: "converge"})
		// Corrupting a length-prefix byte may instead classify as a torn or
		// truncated frame — transient, so the follower reconnects. Either
		// outcome is legal; the matrix only forbids a third state.
		hdr := NoFaults()
		hdr.CorruptReadAt = sp.start + 1
		hdr.CorruptMask = 0x10
		schedules = append(schedules, schedule{
			name: "corrupt-header-" + kindName, plan: hdr, expect: "either"})
	}
	midStream := spans[len(spans)/2].start
	stall := NoFaults()
	stall.StallReadAt, stall.StallFor = midStream, 300*time.Millisecond
	schedules = append(schedules, schedule{name: "stall-short", plan: stall, expect: "converge"})
	longStall := NoFaults()
	longStall.StallReadAt, longStall.StallFor = midStream, 1200*time.Millisecond
	schedules = append(schedules, schedule{name: "stall-past-read-timeout", plan: longStall, expect: "converge"})
	part := NoFaults()
	part.PartitionAt, part.StallFor = midStream, 300*time.Millisecond
	schedules = append(schedules, schedule{name: "partition-both-ways", plan: part, expect: "converge"})

	for _, sched := range schedules {
		t.Run(sched.name, func(t *testing.T) {
			opts := fastFollowerOpts(addr)
			opts.ReadTimeout = time.Second
			opts.Dial = faultDial(sched.plan)
			fdb := newReplDB(t)
			f, err := StartFollower(fdb, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			var outcome string
			deadline := time.Now().Add(15 * time.Second)
			for {
				if q := f.Quarantined(); q != nil {
					outcome = "quarantine"
					if q.Reason == "" {
						t.Fatal("quarantined without a narrated cause")
					}
					break
				}
				if f.Status().AppliedSeq == lastSeq && dump(fdb) == want {
					outcome = "converge"
					break
				}
				if time.Now().After(deadline) {
					st := f.Status()
					t.Fatalf("third state: neither converged nor quarantined (status %+v)", st)
				}
				time.Sleep(2 * time.Millisecond)
			}
			switch sched.expect {
			case "converge", "quarantine":
				if outcome != sched.expect {
					detail := ""
					if q := f.Quarantined(); q != nil {
						detail = ": " + q.Reason
					}
					t.Fatalf("outcome %s%s, want %s", outcome, detail, sched.expect)
				}
			}
			if sched.reason != "" {
				q := f.Quarantined()
				if q == nil || !bytes.Contains([]byte(q.Reason), []byte(sched.reason)) {
					t.Fatalf("quarantine reason %q does not mention %q", q.Reason, sched.reason)
				}
			}
			if outcome == "converge" {
				// Converged means converged exactly: same seq, same bytes.
				if got := fdb.Snapshot().Seq(); got != lastSeq {
					t.Fatalf("converged at seq %d, want %d", got, lastSeq)
				}
			}
		})
	}

	// The primary survived the whole gauntlet with commits unharmed.
	insRow(t, pdb, 9)
	if got, _ := pdb.DurabilityStats(); got.LastSeq != lastSeq+1 {
		t.Fatalf("primary seq %d after the matrix, want %d", got.LastSeq, lastSeq+1)
	}
	_ = storage.ErrReadOnlyReplica // keep the contract import explicit
}
