// Package speech simulates the spoken interaction loop of §2.1: "Using a
// speech recognizer to convert a speech signal to a query and a
// text-to-speech system (TTS) to convert the textual form of the query
// answer into speech, these people would be given the chance to interact
// with information systems, orally pose queries, and listen to their
// answers."
//
// The paper cites real ASR/TTS systems [2, 7]; this package substitutes
// deterministic simulators (see DESIGN.md §4): a grammar-driven recognizer
// that maps utterance patterns to SQL, and a synthesizer that converts text
// into timed word/syllable events — the same integration surface an actual
// ASR/TTS pair would expose, without audio hardware.
package speech

import (
	"fmt"
	"strings"
	"unicode"
)

// Pattern is one recognizer grammar rule: an utterance template with
// {slot} placeholders and the SQL it produces ({slot} values substitute
// into the SQL with single quotes escaped).
type Pattern struct {
	// Utterance is the template, lowercase, e.g.
	// "which movies does {actor} play in".
	Utterance string
	// SQL is the query template, e.g. "select m.title from ... where
	// a.name = '{actor}'".
	SQL string
}

// Recognizer simulates an ASR front end with a fixed grammar.
type Recognizer struct {
	patterns []Pattern
}

// NewRecognizer compiles the grammar.
func NewRecognizer(patterns []Pattern) *Recognizer {
	return &Recognizer{patterns: patterns}
}

// Recognition is a successful parse.
type Recognition struct {
	// SQL is the produced query.
	SQL string
	// Pattern is the matched rule's utterance template.
	Pattern string
	// Slots holds the extracted placeholder values.
	Slots map[string]string
	// Confidence simulates ASR confidence: the fraction of utterance
	// tokens matched literally (slot tokens count half).
	Confidence float64
}

// Recognize matches an utterance against the grammar. Matching is
// case-insensitive, punctuation-insensitive, and slots capture greedily up
// to the next literal word.
func (r *Recognizer) Recognize(utterance string) (*Recognition, error) {
	words := tokenize(utterance)
	var best *Recognition
	for _, p := range r.patterns {
		slots, literal, ok := match(tokenize(p.Utterance), words)
		if !ok {
			continue
		}
		sql := p.SQL
		for k, v := range slots {
			sql = strings.ReplaceAll(sql, "{"+k+"}", strings.ReplaceAll(v, "'", "''"))
		}
		total := len(tokenize(p.Utterance))
		conf := 1.0
		if total > 0 {
			conf = (float64(literal) + 0.5*float64(total-literal)) / float64(total)
		}
		cand := &Recognition{SQL: sql, Pattern: p.Utterance, Slots: slots, Confidence: conf}
		if best == nil || cand.Confidence > best.Confidence {
			best = cand
		}
	}
	if best == nil {
		return nil, fmt.Errorf("speech: utterance %q matches no grammar rule", utterance)
	}
	return best, nil
}

func tokenize(s string) []string {
	var words []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			words = append(words, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '{' || r == '}' || r == '\'' || r == '.' || r == '-':
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return words
}

// match aligns pattern tokens against utterance tokens; {slot} captures one
// or more tokens greedily up to the next literal. Returns slot values and
// the count of literally matched tokens.
func match(pat, words []string) (map[string]string, int, bool) {
	slots := map[string]string{}
	literal := 0
	wi := 0
	for pi := 0; pi < len(pat); pi++ {
		tok := pat[pi]
		if strings.HasPrefix(tok, "{") && strings.HasSuffix(tok, "}") {
			name := tok[1 : len(tok)-1]
			// Find the next literal token, then capture everything before
			// its first occurrence at or after wi.
			if pi == len(pat)-1 {
				if wi >= len(words) {
					return nil, 0, false
				}
				slots[name] = joinTokens(words[wi:])
				wi = len(words)
				continue
			}
			next := pat[pi+1]
			end := -1
			for j := wi + 1; j <= len(words)-1; j++ {
				if words[j] == next {
					end = j
					break
				}
			}
			if end < 0 || end == wi {
				return nil, 0, false
			}
			slots[name] = joinTokens(words[wi:end])
			wi = end
			continue
		}
		if wi >= len(words) || words[wi] != tok {
			return nil, 0, false
		}
		literal++
		wi++
	}
	if wi != len(words) {
		return nil, 0, false
	}
	return slots, literal, true
}

// joinTokens reassembles captured tokens with original-ish capitalization:
// each token is title-cased, since slot values name entities.
func joinTokens(toks []string) string {
	out := make([]string, len(toks))
	for i, t := range toks {
		if t == "" {
			continue
		}
		out[i] = strings.ToUpper(t[:1]) + t[1:]
	}
	return strings.Join(out, " ")
}

// ---------------------------------------------------------------------------
// Synthesizer
// ---------------------------------------------------------------------------

// Event is one timed synthesis unit.
type Event struct {
	// Word is the orthographic word.
	Word string
	// Syllables estimates the word's syllable count.
	Syllables int
	// StartMs / DurationMs time the word on the output stream.
	StartMs, DurationMs int
	// Pause marks a clause boundary pause event (Word empty).
	Pause bool
}

// Synthesizer simulates a TTS back end: deterministic syllable-timed word
// events at a configurable speaking rate.
type Synthesizer struct {
	// MsPerSyllable is the speaking rate (default 180 ms).
	MsPerSyllable int
	// PauseMs is the clause-boundary pause (default 300 ms).
	PauseMs int
}

// NewSynthesizer builds a synthesizer with default rates.
func NewSynthesizer() *Synthesizer {
	return &Synthesizer{MsPerSyllable: 180, PauseMs: 300}
}

// Speak converts text into a timed event stream.
func (s *Synthesizer) Speak(text string) []Event {
	ms := s.MsPerSyllable
	if ms <= 0 {
		ms = 180
	}
	pause := s.PauseMs
	if pause <= 0 {
		pause = 300
	}
	var events []Event
	t := 0
	word := strings.Builder{}
	flush := func() {
		if word.Len() == 0 {
			return
		}
		w := word.String()
		word.Reset()
		syl := countSyllables(w)
		events = append(events, Event{Word: w, Syllables: syl, StartMs: t, DurationMs: syl * ms})
		t += syl * ms
	}
	for _, r := range text {
		switch {
		case unicode.IsSpace(r):
			flush()
		case r == '.' || r == ',' || r == ';' || r == ':' || r == '!' || r == '?':
			flush()
			events = append(events, Event{Pause: true, StartMs: t, DurationMs: pause})
			t += pause
		default:
			word.WriteRune(r)
		}
	}
	flush()
	return events
}

// DurationMs totals the stream length.
func DurationMs(events []Event) int {
	total := 0
	for _, e := range events {
		total += e.DurationMs
	}
	return total
}

// Transcript reassembles the spoken words (pauses become " / ").
func Transcript(events []Event) string {
	var parts []string
	for _, e := range events {
		if e.Pause {
			parts = append(parts, "/")
			continue
		}
		parts = append(parts, e.Word)
	}
	return strings.Join(parts, " ")
}

// countSyllables estimates syllables by vowel-group counting with final-e
// correction; at least 1 per word.
func countSyllables(word string) int {
	lower := strings.ToLower(word)
	count := 0
	prevVowel := false
	for _, r := range lower {
		v := strings.ContainsRune("aeiouy", r)
		if v && !prevVowel {
			count++
		}
		prevVowel = v
	}
	// Silent final e after a consonant ("made", "Brooklyn-side" words) drops
	// a syllable; vowel+e endings ("movie") and -le ("table") keep theirs.
	if len(lower) >= 2 && strings.HasSuffix(lower, "e") && count > 1 {
		prev := rune(lower[len(lower)-2])
		if !strings.ContainsRune("aeiouyl", prev) {
			count--
		}
	}
	if count < 1 {
		count = 1
	}
	return count
}

// MovieGrammar is the demo grammar over the Fig. 1 schema, pairing spoken
// questions with the queries the paper discusses.
func MovieGrammar() []Pattern {
	return []Pattern{
		{
			Utterance: "which movies does {actor} play in",
			SQL: `select m.title from MOVIES m, CAST c, ACTOR a
where m.id = c.mid and c.aid = a.id and a.name = '{actor}'`,
		},
		{
			Utterance: "who directed {title}",
			SQL: `select d.name from DIRECTOR d, DIRECTED r, MOVIES m
where d.id = r.did and r.mid = m.id and m.title = '{title}'`,
		},
		{
			Utterance: "tell me about {director}",
			SQL:       `select d.name, d.bdate, d.blocation from DIRECTOR d where d.name = '{director}'`,
		},
		{
			Utterance: "which actors played in {title}",
			SQL: `select a.name from MOVIES m, CAST c, ACTOR a
where m.id = c.mid and c.aid = a.id and m.title = '{title}'`,
		},
		{
			Utterance: "how many movies were released in {year}",
			SQL:       `select count(*) from MOVIES m where m.year = {year}`,
		},
	}
}
