package speech

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/engine"
)

func TestRecognizeActorQuestion(t *testing.T) {
	r := NewRecognizer(MovieGrammar())
	rec, err := r.Recognize("Which movies does Brad Pitt play in?")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Slots["actor"] != "Brad Pitt" {
		t.Errorf("slot = %q", rec.Slots["actor"])
	}
	if !strings.Contains(rec.SQL, "a.name = 'Brad Pitt'") {
		t.Errorf("sql = %s", rec.SQL)
	}
	if rec.Confidence <= 0 || rec.Confidence > 1 {
		t.Errorf("confidence = %v", rec.Confidence)
	}
}

func TestRecognizeTrailingSlot(t *testing.T) {
	r := NewRecognizer(MovieGrammar())
	rec, err := r.Recognize("who directed Match Point")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Slots["title"] != "Match Point" {
		t.Errorf("slot = %q", rec.Slots["title"])
	}
}

func TestRecognizeEscapesQuotes(t *testing.T) {
	r := NewRecognizer([]Pattern{{
		Utterance: "find {name}",
		SQL:       "select * from T t where t.x = '{name}'",
	}})
	rec, err := r.Recognize("find o'brien")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.SQL, "O''brien") {
		t.Errorf("sql = %s", rec.SQL)
	}
}

func TestRecognizeNumberSlot(t *testing.T) {
	r := NewRecognizer(MovieGrammar())
	rec, err := r.Recognize("how many movies were released in 1999")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec.SQL, "m.year = 1999") {
		t.Errorf("sql = %s", rec.SQL)
	}
}

func TestRecognizeUnknownUtterance(t *testing.T) {
	r := NewRecognizer(MovieGrammar())
	if _, err := r.Recognize("sing me a song"); err == nil {
		t.Error("nonsense accepted")
	}
	if _, err := r.Recognize(""); err == nil {
		t.Error("empty utterance accepted")
	}
}

// TestRecognizedSQLRunsOnEngine closes the loop: every grammar rule's SQL
// parses and executes against the curated database.
func TestRecognizedSQLRunsOnEngine(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := engine.New(db)
	r := NewRecognizer(MovieGrammar())
	utterances := []string{
		"which movies does Brad Pitt play in",
		"who directed Match Point",
		"tell me about Woody Allen",
		"which actors played in The Matrix",
		"how many movies were released in 1999",
	}
	for _, u := range utterances {
		rec, err := r.Recognize(u)
		if err != nil {
			t.Errorf("%q: %v", u, err)
			continue
		}
		res, err := ex.Query(rec.SQL)
		if err != nil {
			t.Errorf("%q: engine: %v", u, err)
			continue
		}
		if len(res.Rows) == 0 {
			t.Errorf("%q: empty answer", u)
		}
	}
}

func TestSynthesizerTiming(t *testing.T) {
	s := NewSynthesizer()
	events := s.Speak("Woody Allen was born in Brooklyn.")
	if len(events) == 0 {
		t.Fatal("no events")
	}
	// Monotone, contiguous timing.
	expected := 0
	for _, e := range events {
		if e.StartMs != expected {
			t.Errorf("event %q starts at %d, want %d", e.Word, e.StartMs, expected)
		}
		expected += e.DurationMs
	}
	if DurationMs(events) != expected {
		t.Errorf("DurationMs = %d, want %d", DurationMs(events), expected)
	}
	// The final period produces a pause event.
	last := events[len(events)-1]
	if !last.Pause {
		t.Errorf("final event = %+v", last)
	}
}

func TestSyllableEstimates(t *testing.T) {
	cases := map[string]int{
		"a":        1,
		"movie":    2,
		"actor":    2,
		"Brooklyn": 2,
		"December": 3,
		"table":    2,
		"xyz":      1,
	}
	for in, want := range cases {
		if got := countSyllables(in); got != want {
			t.Errorf("countSyllables(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestTranscript(t *testing.T) {
	s := NewSynthesizer()
	events := s.Speak("Hello there, world.")
	got := Transcript(events)
	if got != "Hello there / world /" {
		t.Errorf("Transcript = %q", got)
	}
}

func TestSpeakEmptyAndRates(t *testing.T) {
	s := &Synthesizer{} // zero rates fall back to defaults
	if events := s.Speak(""); len(events) != 0 {
		t.Error("empty text spoke")
	}
	events := s.Speak("hi")
	if len(events) != 1 || events[0].DurationMs != 180 {
		t.Errorf("default rate = %+v", events)
	}
	fast := &Synthesizer{MsPerSyllable: 50, PauseMs: 10}
	fe := fast.Speak("hi.")
	if fe[0].DurationMs != 50 || fe[1].DurationMs != 10 {
		t.Errorf("custom rates = %+v", fe)
	}
}

// Property: speaking n words yields at least n events and total duration
// equal to the sum of event durations.
func TestSpeakProperty(t *testing.T) {
	s := NewSynthesizer()
	f := func(raw []byte) bool {
		// Build a sanitized word list.
		var words []string
		for _, b := range raw {
			w := string(rune('a' + int(b)%26))
			words = append(words, strings.Repeat(w, int(b)%5+1))
		}
		text := strings.Join(words, " ")
		events := s.Speak(text)
		if len(events) != len(words) {
			return len(words) == 0 && len(events) == 0
		}
		total := 0
		for _, e := range events {
			if e.DurationMs <= 0 {
				return false
			}
			total += e.DurationMs
		}
		return total == DurationMs(events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRecognize(b *testing.B) {
	r := NewRecognizer(MovieGrammar())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Recognize("which movies does Brad Pitt play in"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpeak(b *testing.B) {
	s := NewSynthesizer()
	text := "Woody Allen was born in Brooklyn, New York, USA on December 1, 1935."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Speak(text)
	}
}
