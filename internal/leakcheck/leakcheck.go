// Package leakcheck is a test helper that fails a test when goroutines
// outlive it. Cancellation tests lean on it: a query stopped mid-morsel
// must unwind its whole worker fan-out, not abandon goroutines blocked on
// channels nobody will read.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Check records the current goroutine count and returns a func — defer it —
// that fails t if the count has not settled back to the baseline within a
// grace window. The window absorbs goroutines that are mid-exit when the
// test body returns (worker pools unwinding, timers firing); anything still
// alive after it is a leak, reported with a full stack dump.
func Check(t testing.TB) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(5 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d running, baseline was %d\n%s", n, base, buf)
	}
}
