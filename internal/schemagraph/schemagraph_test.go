package schemagraph

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/templates"
)

func movieGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := Build(dataset.MovieSchema())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildNodesAndEdges(t *testing.T) {
	g := movieGraph(t)
	if len(g.Nodes()) != 6 {
		t.Fatalf("nodes = %d", len(g.Nodes()))
	}
	m := g.Node("movies")
	if m == nil || len(m.Projections) != 3 {
		t.Fatalf("MOVIES projections = %v", m)
	}
	// CAST declares FKs to MOVIES and ACTOR; edges exist both directions.
	if len(g.JoinsBetween("CAST", "MOVIES")) != 1 {
		t.Error("CAST->MOVIES join missing")
	}
	if len(g.JoinsBetween("MOVIES", "CAST")) != 1 {
		t.Error("MOVIES->CAST reverse join missing")
	}
	if len(g.JoinsBetween("MOVIES", "ACTOR")) != 0 {
		t.Error("phantom MOVIES->ACTOR join")
	}
}

func TestAttributeLookup(t *testing.T) {
	g := movieGraph(t)
	if g.Attribute("MOVIES", "TITLE") == nil {
		t.Error("case-insensitive attribute lookup failed")
	}
	if g.Attribute("MOVIES", "nope") != nil {
		t.Error("phantom attribute")
	}
	if g.Attribute("NOPE", "x") != nil {
		t.Error("phantom relation")
	}
}

func TestAnnotations(t *testing.T) {
	g := movieGraph(t)
	tpl := templates.MustParse(`TITLE + " (" + YEAR + ")"`)
	if err := g.AnnotateRelation("MOVIES", tpl); err != nil {
		t.Fatal(err)
	}
	if g.Node("MOVIES").Template != tpl {
		t.Error("relation template not set")
	}
	if err := g.AnnotateProjection("MOVIES", "year", tpl); err != nil {
		t.Fatal(err)
	}
	if err := g.AnnotateJoin("DIRECTED", "DIRECTOR", tpl, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.AnnotateRelation("NOPE", tpl); err == nil {
		t.Error("unknown relation accepted")
	}
	if err := g.AnnotateProjection("MOVIES", "nope", tpl); err == nil {
		t.Error("unknown attribute accepted")
	}
	if err := g.AnnotateJoin("MOVIES", "ACTOR", tpl, nil); err == nil {
		t.Error("nonexistent join accepted")
	}
}

func TestDetectPatternUnary(t *testing.T) {
	g := movieGraph(t)
	scope := map[string]bool{"director": true, "directed": true}
	p := g.DetectPattern(g.Node("DIRECTED"), scope)
	if p.Kind != UnaryPattern || len(p.Others) != 1 || p.Others[0].Rel.Name != "DIRECTOR" {
		t.Errorf("pattern = %v %v", p.Kind, p.Others)
	}
}

func TestDetectPatternSplit(t *testing.T) {
	g := movieGraph(t)
	// CAST points out to MOVIES and ACTOR: a split read from CAST.
	scope := map[string]bool{"movies": true, "actor": true, "cast": true}
	p := g.DetectPattern(g.Node("CAST"), scope)
	if p.Kind != SplitPattern || len(p.Others) != 2 {
		t.Errorf("pattern = %v, others = %d", p.Kind, len(p.Others))
	}
}

func TestDetectPatternJoin(t *testing.T) {
	g := movieGraph(t)
	// CAST, DIRECTED, GENRE all point INTO MOVIES: join pattern at MOVIES.
	scope := map[string]bool{"movies": true, "cast": true, "directed": true, "genre": true}
	p := g.DetectPattern(g.Node("MOVIES"), scope)
	if p.Kind != JoinPattern || len(p.Others) != 3 {
		t.Errorf("pattern = %v, others = %d", p.Kind, len(p.Others))
	}
}

func TestDetectPatternScopeRestriction(t *testing.T) {
	g := movieGraph(t)
	// With only CAST in scope, MOVIES sees a unary pattern.
	scope := map[string]bool{"movies": true, "cast": true}
	p := g.DetectPattern(g.Node("MOVIES"), scope)
	if p.Kind != UnaryPattern {
		t.Errorf("pattern = %v", p.Kind)
	}
}

func TestDFS(t *testing.T) {
	g := movieGraph(t)
	tr, err := g.DFS("DIRECTOR", nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Order[0].Rel.Name != "DIRECTOR" {
		t.Errorf("DFS start = %s", tr.Order[0].Rel.Name)
	}
	// All six relations reachable.
	if len(tr.Order) != 6 {
		t.Errorf("DFS visited %d relations", len(tr.Order))
	}
	// Every non-start node has a parent edge.
	for _, n := range tr.Order[1:] {
		if tr.Parent[strings.ToLower(n.Rel.Name)] == nil {
			t.Errorf("no parent for %s", n.Rel.Name)
		}
	}
	// Determinism.
	tr2, _ := g.DFS("DIRECTOR", nil)
	for i := range tr.Order {
		if tr.Order[i] != tr2.Order[i] {
			t.Fatal("DFS not deterministic")
		}
	}
}

func TestDFSWeightOrdering(t *testing.T) {
	g := movieGraph(t)
	// From MOVIES, the heaviest neighbor relations should come first; boost
	// GENRE explicitly.
	g.Node("GENRE").Weight = 10
	tr, _ := g.DFS("MOVIES", nil)
	if tr.Order[1].Rel.Name != "GENRE" {
		t.Errorf("weighted DFS second = %s", tr.Order[1].Rel.Name)
	}
}

func TestDFSSkip(t *testing.T) {
	g := movieGraph(t)
	tr, err := g.DFS("DIRECTOR", map[string]bool{"cast": true, "genre": true})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Order {
		if n.Rel.Name == "CAST" || n.Rel.Name == "GENRE" {
			t.Errorf("skipped relation visited: %s", n.Rel.Name)
		}
	}
	if _, err := g.DFS("NOPE", nil); err == nil {
		t.Error("unknown start accepted")
	}
}

func TestDOT(t *testing.T) {
	g := movieGraph(t)
	dot := g.DOT(false)
	for _, want := range []string{
		"digraph schema", "MOVIES", "DIRECTOR",
		"CAST -> MOVIES", "CAST -> ACTOR", "DIRECTED -> DIRECTOR", "GENRE -> MOVIES",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	if strings.Contains(dot, "ellipse") {
		t.Error("attribute nodes rendered without withAttributes")
	}
	dotAttrs := g.DOT(true)
	if !strings.Contains(dotAttrs, "ellipse") || !strings.Contains(dotAttrs, "MOVIES_title") {
		t.Error("withAttributes render missing attribute nodes")
	}
}

func TestASCII(t *testing.T) {
	g := movieGraph(t)
	s := g.ASCII()
	for _, want := range []string{
		"MOVIES(id, title, year)",
		"-> MOVIES via (mid)",
		"DIRECTOR(id, name, bdate, blocation)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("ASCII missing %q:\n%s", want, s)
		}
	}
}

func TestDefaultAnnotations(t *testing.T) {
	g := movieGraph(t)
	g.DefaultAnnotations()
	m := g.Node("MOVIES")
	if m.Template == nil {
		t.Fatal("no derived relation template")
	}
	out, err := m.Template.Instantiate(templates.MapBinding{"TITLE": "Match Point"})
	if err != nil {
		t.Fatal(err)
	}
	if out != "The movie's title is Match Point" {
		t.Errorf("derived template = %q", out)
	}
	// Projection template for year exists, none for the heading itself.
	var yearTpl, titleTpl bool
	for _, p := range m.Projections {
		switch p.Attr.Name {
		case "year":
			yearTpl = p.Template != nil
		case "title":
			titleTpl = p.Template != nil
		}
	}
	if !yearTpl || titleTpl {
		t.Errorf("projection templates: year=%v title=%v", yearTpl, titleTpl)
	}
	// Derived templates do not overwrite explicit ones.
	g2 := movieGraph(t)
	explicit := templates.MustParse(`"X"`)
	_ = g2.AnnotateRelation("MOVIES", explicit)
	g2.DefaultAnnotations()
	if g2.Node("MOVIES").Template != explicit {
		t.Error("explicit template overwritten")
	}
}

func TestPatternKindString(t *testing.T) {
	if UnaryPattern.String() != "unary" || JoinPattern.String() != "join" || SplitPattern.String() != "split" {
		t.Error("PatternKind names")
	}
	if ProjectionEdge.String() != "projection" || JoinEdge.String() != "join" {
		t.Error("EdgeKind names")
	}
}

func BenchmarkBuild(b *testing.B) {
	schema := dataset.MovieSchema()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(schema); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDFS(b *testing.B) {
	g, err := Build(dataset.MovieSchema())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.DFS("DIRECTOR", nil); err != nil {
			b.Fatal(err)
		}
	}
}
