// Package schemagraph builds the paper's database schema graph (§2.2,
// Fig. 1): relation and attribute nodes, projection edges (relation →
// attribute), and join edges (foreign-key relationships between relations).
// Nodes and edges carry the template labels and weights that drive
// translation, and the graph renders to DOT and ASCII for the Fig. 1
// reproduction.
package schemagraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/templates"
)

// EdgeKind discriminates the two edge types of the schema graph.
type EdgeKind int

// Edge kinds: a projection edge runs from a relation to one of its
// attributes; a join edge runs between two relations along a foreign key.
const (
	ProjectionEdge EdgeKind = iota
	JoinEdge
)

// String names the kind.
func (k EdgeKind) String() string {
	if k == JoinEdge {
		return "join"
	}
	return "projection"
}

// RelationNode is a relation vertex.
type RelationNode struct {
	Rel *catalog.Relation
	// Template is the label used when the relation's content is rendered as
	// a standalone clause (subject = heading attribute).
	Template *templates.Template
	// Weight biases traversal order and budget cuts; falls back to the
	// catalog weight when zero.
	Weight float64

	Projections []*AttributeNode
	Joins       []*Join
}

// AttributeNode is an attribute vertex, reached by exactly one projection
// edge from its container relation.
type AttributeNode struct {
	Rel  *catalog.Relation
	Attr *catalog.Attribute
	// Template is the projection-edge label, e.g.
	// "the YEAR of a MOVIE(.TITLE)" instantiated as
	// TITLE + " was released in " + YEAR.
	Template *templates.Template
	Weight   float64
	// Order records annotation sequence: the designer's label order decides
	// clause order during synthesis (the paper's "in BLOCATION" label comes
	// before "on BDATE", so the merged clause reads in ... on ...).
	// Zero means unannotated.
	Order int
}

// Join is a join edge between two relations.
type Join struct {
	From *RelationNode
	To   *RelationNode
	FK   catalog.ForeignKey
	// Template is the join-edge label relating the two heading attributes,
	// e.g. "the GENRE(.GENRE) of a MOVIE(.TITLE)".
	Template *templates.Template
	// ListTemplate renders one-to-many traversals as an enumerated list
	// (the paper's MOVIE_LIST); optional.
	ListTemplate *templates.ListTemplate
	Weight       float64
}

// Graph is the schema graph over one catalog schema.
type Graph struct {
	Schema *catalog.Schema
	nodes  map[string]*RelationNode
	order  []string // insertion order of relation keys
	annSeq int      // running annotation counter (see AttributeNode.Order)
}

// Build constructs the graph: one relation node per relation, one attribute
// node per attribute, and a join edge per declared foreign key (in both
// directions, since translation may traverse either way).
func Build(schema *catalog.Schema) (*Graph, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	g := &Graph{Schema: schema, nodes: make(map[string]*RelationNode)}
	for _, r := range schema.Relations() {
		n := &RelationNode{Rel: r}
		for _, a := range r.Attributes {
			n.Projections = append(n.Projections, &AttributeNode{Rel: r, Attr: a})
		}
		g.nodes[strings.ToLower(r.Name)] = n
		g.order = append(g.order, strings.ToLower(r.Name))
	}
	for _, r := range schema.Relations() {
		from := g.nodes[strings.ToLower(r.Name)]
		for _, fk := range r.ForeignKey {
			to := g.nodes[strings.ToLower(fk.RefRelation)]
			if to == nil {
				return nil, fmt.Errorf("schemagraph: foreign key of %s references missing relation %s", r.Name, fk.RefRelation)
			}
			fwd := &Join{From: from, To: to, FK: fk}
			rev := &Join{From: to, To: from, FK: fk}
			from.Joins = append(from.Joins, fwd)
			to.Joins = append(to.Joins, rev)
		}
	}
	return g, nil
}

// Node returns the relation node by (case-insensitive) name, or nil.
func (g *Graph) Node(name string) *RelationNode {
	return g.nodes[strings.ToLower(name)]
}

// Nodes returns all relation nodes in schema declaration order.
func (g *Graph) Nodes() []*RelationNode {
	out := make([]*RelationNode, len(g.order))
	for i, k := range g.order {
		out[i] = g.nodes[k]
	}
	return out
}

// Attribute returns the attribute node rel.attr, or nil.
func (g *Graph) Attribute(rel, attr string) *AttributeNode {
	n := g.Node(rel)
	if n == nil {
		return nil
	}
	for _, p := range n.Projections {
		if strings.EqualFold(p.Attr.Name, attr) {
			return p
		}
	}
	return nil
}

// JoinsBetween returns the join edges from a to b (either FK direction).
func (g *Graph) JoinsBetween(a, b string) []*Join {
	n := g.Node(a)
	if n == nil {
		return nil
	}
	var out []*Join
	for _, j := range n.Joins {
		if strings.EqualFold(j.To.Rel.Name, b) {
			out = append(out, j)
		}
	}
	return out
}

// AnnotateRelation sets the relation-node template.
func (g *Graph) AnnotateRelation(rel string, tpl *templates.Template) error {
	n := g.Node(rel)
	if n == nil {
		return fmt.Errorf("schemagraph: unknown relation %q", rel)
	}
	n.Template = tpl
	return nil
}

// AnnotateProjection sets the projection-edge template of rel.attr and
// records the annotation sequence number used for clause ordering.
func (g *Graph) AnnotateProjection(rel, attr string, tpl *templates.Template) error {
	p := g.Attribute(rel, attr)
	if p == nil {
		return fmt.Errorf("schemagraph: unknown attribute %s.%s", rel, attr)
	}
	g.annSeq++
	p.Template = tpl
	p.Order = g.annSeq
	return nil
}

// AnnotateJoin sets the join-edge template between two relations (applied to
// the edge in the from→to direction).
func (g *Graph) AnnotateJoin(from, to string, tpl *templates.Template, list *templates.ListTemplate) error {
	joins := g.JoinsBetween(from, to)
	if len(joins) == 0 {
		return fmt.Errorf("schemagraph: no join edge %s → %s", from, to)
	}
	for _, j := range joins {
		j.Template = tpl
		j.ListTemplate = list
	}
	return nil
}

// PatternKind classifies the structural patterns found during traversal
// (§2.2): unary Ri–Rj, join Ri1,Ri2 → Rj, split Ri → Rj1,Rj2.
type PatternKind int

// Structural patterns.
const (
	UnaryPattern PatternKind = iota
	JoinPattern
	SplitPattern
)

// String names the pattern.
func (k PatternKind) String() string {
	switch k {
	case UnaryPattern:
		return "unary"
	case JoinPattern:
		return "join"
	default:
		return "split"
	}
}

// Pattern is one detected structural pattern around Center.
type Pattern struct {
	Kind PatternKind
	// Center is Ri for unary and split, Rj for join.
	Center *RelationNode
	// Others are the non-center relations: one for unary, two or more for
	// join/split.
	Others []*RelationNode
}

// DetectPattern classifies the neighborhood of center restricted to the
// relation set in scope: one neighbor → unary; multiple in-scope relations
// joining INTO center → join; center fanning OUT to multiple → split.
// Direction follows foreign keys: an FK from A to B points A → B.
func (g *Graph) DetectPattern(center *RelationNode, scope map[string]bool) Pattern {
	var in, out []*RelationNode
	seen := map[string]bool{}
	for _, j := range center.Joins {
		name := strings.ToLower(j.To.Rel.Name)
		if !scope[name] || seen[name] {
			continue
		}
		seen[name] = true
		// Determine FK direction: the edge's FK belongs to its declaring
		// relation; if center declares it, center points out.
		if fkDeclaredBy(j.FK, center.Rel) {
			out = append(out, j.To)
		} else {
			in = append(in, j.To)
		}
	}
	switch {
	case len(in)+len(out) <= 1:
		others := append(in, out...)
		return Pattern{Kind: UnaryPattern, Center: center, Others: others}
	case len(in) >= 2 && len(out) == 0:
		return Pattern{Kind: JoinPattern, Center: center, Others: in}
	case len(out) >= 2 && len(in) == 0:
		return Pattern{Kind: SplitPattern, Center: center, Others: out}
	default:
		// Mixed fan-in/fan-out: treat as split from the center (the
		// translator walks outward), listing all neighbors.
		return Pattern{Kind: SplitPattern, Center: center, Others: append(out, in...)}
	}
}

func fkDeclaredBy(fk catalog.ForeignKey, rel *catalog.Relation) bool {
	for _, a := range fk.Attrs {
		if rel.AttrIndex(a) < 0 {
			return false
		}
	}
	// The FK also names a ref relation different from rel.
	return !strings.EqualFold(fk.RefRelation, rel.Name)
}

// Traversal is a DFS order over relation nodes starting from a point of
// interest, honoring weights (heavier neighbors first) — the paper's
// "simple DFS-like traversal starting from a central point of interest".
type Traversal struct {
	Order []*RelationNode
	// Parent maps each visited relation (lowercase) to the join edge used
	// to reach it; the start node has no entry.
	Parent map[string]*Join
}

// DFS runs the traversal from start. Relations in skip are not entered
// (weight budgeting), but the start node is always included. Neighbor order
// is by descending weight, then name, for determinism.
func (g *Graph) DFS(start string, skip map[string]bool) (*Traversal, error) {
	s := g.Node(start)
	if s == nil {
		return nil, fmt.Errorf("schemagraph: unknown start relation %q", start)
	}
	tr := &Traversal{Parent: make(map[string]*Join)}
	visited := map[string]bool{}
	var visit func(n *RelationNode)
	visit = func(n *RelationNode) {
		key := strings.ToLower(n.Rel.Name)
		if visited[key] {
			return
		}
		visited[key] = true
		tr.Order = append(tr.Order, n)
		joins := append([]*Join{}, n.Joins...)
		sort.SliceStable(joins, func(a, b int) bool {
			wa, wb := g.joinWeight(joins[a]), g.joinWeight(joins[b])
			if wa != wb {
				return wa > wb
			}
			return joins[a].To.Rel.Name < joins[b].To.Rel.Name
		})
		for _, j := range joins {
			tkey := strings.ToLower(j.To.Rel.Name)
			if visited[tkey] || skip[tkey] {
				continue
			}
			tr.Parent[tkey] = j
			visit(j.To)
		}
	}
	visit(s)
	return tr, nil
}

func (g *Graph) joinWeight(j *Join) float64 {
	if j.Weight != 0 {
		return j.Weight
	}
	w := j.To.Weight
	if w == 0 {
		w = g.Schema.WeightFor(j.To.Rel, nil)
	}
	return w
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

// DOT renders the schema graph in Graphviz format, reproducing Fig. 1:
// relation nodes as boxes with their attributes, join edges between them.
// Projection edges are drawn when withAttributes is true.
func (g *Graph) DOT(withAttributes bool) string {
	var b strings.Builder
	b.WriteString("digraph schema {\n  rankdir=LR;\n  node [shape=record, fontname=\"Helvetica\"];\n")
	for _, n := range g.Nodes() {
		attrs := make([]string, len(n.Rel.Attributes))
		for i, a := range n.Rel.Attributes {
			attrs[i] = a.Name
		}
		fmt.Fprintf(&b, "  %s [label=\"{%s|%s}\"];\n",
			dotID(n.Rel.Name), n.Rel.Name, strings.Join(attrs, `\l`)+`\l`)
		if withAttributes {
			for _, p := range n.Projections {
				fmt.Fprintf(&b, "  %s_%s [shape=ellipse, label=\"%s\"];\n",
					dotID(n.Rel.Name), dotID(p.Attr.Name), p.Attr.Name)
				fmt.Fprintf(&b, "  %s -> %s_%s [style=dashed, arrowhead=open];\n",
					dotID(n.Rel.Name), dotID(n.Rel.Name), dotID(p.Attr.Name))
			}
		}
	}
	// Join edges once per FK (declared direction).
	for _, n := range g.Nodes() {
		for _, fk := range n.Rel.ForeignKey {
			fmt.Fprintf(&b, "  %s -> %s [label=\"%s\"];\n",
				dotID(n.Rel.Name), dotID(fk.RefRelation),
				strings.Join(fk.Attrs, ","))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func dotID(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9') {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// ASCII renders a compact adjacency listing used by the CLI tools:
//
//	MOVIES(id, title, year)
//	  <- CAST(mid)  <- DIRECTED(mid)  <- GENRE(mid)
func (g *Graph) ASCII() string {
	var b strings.Builder
	for _, n := range g.Nodes() {
		attrs := make([]string, len(n.Rel.Attributes))
		for i, a := range n.Rel.Attributes {
			attrs[i] = a.Name
		}
		fmt.Fprintf(&b, "%s(%s)\n", n.Rel.Name, strings.Join(attrs, ", "))
		var lines []string
		for _, fk := range n.Rel.ForeignKey {
			lines = append(lines, fmt.Sprintf("  -> %s via (%s)", fk.RefRelation, strings.Join(fk.Attrs, ", ")))
		}
		sort.Strings(lines)
		for _, l := range lines {
			b.WriteString(l + "\n")
		}
	}
	return b.String()
}

// DefaultAnnotations derives generic template labels for every relation and
// projection edge that lacks one — the automated fallback for schemas whose
// designer has not written labels (DESIGN.md §4). The derived relation
// template reads "The <concept>'s <heading gloss> is <HEADING>"; projection
// templates read "<HEADING> has <attr gloss> <ATTR>"; join templates read
// "<FROM HEADING> is related to <TO HEADING>".
func (g *Graph) DefaultAnnotations() {
	for _, n := range g.Nodes() {
		h := n.Rel.Heading()
		if h == nil {
			continue
		}
		if n.Template == nil {
			n.Template = templates.MustParse(fmt.Sprintf(
				`"The %s's %s is " + %s`, n.Rel.Concept(), h.GlossOrDefault(), strings.ToUpper(h.Name)))
		}
		for _, p := range n.Projections {
			if p.Template != nil || strings.EqualFold(p.Attr.Name, h.Name) {
				continue
			}
			// Key and foreign-key attributes are structural, not narrative:
			// "Woody Allen has identifier 1" helps nobody.
			if isStructuralAttr(n.Rel, p.Attr.Name) {
				continue
			}
			g.annSeq++
			p.Template = templates.MustParse(fmt.Sprintf(
				`%s + " has %s " + %s`, strings.ToUpper(h.Name), p.Attr.GlossOrDefault(), strings.ToUpper(p.Attr.Name)))
			p.Order = g.annSeq
		}
	}
}

// isStructuralAttr reports whether attr participates in the relation's
// primary key or any of its foreign keys.
func isStructuralAttr(rel *catalog.Relation, attr string) bool {
	for _, k := range rel.PrimaryKey {
		if strings.EqualFold(k, attr) {
			return true
		}
	}
	for _, fk := range rel.ForeignKey {
		for _, a := range fk.Attrs {
			if strings.EqualFold(a, attr) {
				return true
			}
		}
	}
	return false
}
