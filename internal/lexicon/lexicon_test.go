package lexicon

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
	"unicode"
)

func TestPluralize(t *testing.T) {
	cases := map[string]string{
		"movie":    "movies",
		"actor":    "actors",
		"actress":  "actresses",
		"genre":    "genres",
		"director": "directors",
		"query":    "queries",
		"box":      "boxes",
		"church":   "churches",
		"hero":     "heroes",
		"photo":    "photos",
		"person":   "people",
		"child":    "children",
		"index":    "indexes",
		"schema":   "schemas",
		"life":     "lives",
		"series":   "series",
		"day":      "days",
		"key":      "keys",
		"MOVIE":    "MOVIES",
		"Actor":    "Actors",
		"":         "",
	}
	for in, want := range cases {
		if got := Pluralize(in); got != want {
			t.Errorf("Pluralize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPluralizeUncountable(t *testing.T) {
	for _, w := range []string{"information", "metadata", "news"} {
		if got := Pluralize(w); got != w {
			t.Errorf("Pluralize(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestSingularize(t *testing.T) {
	cases := map[string]string{
		"movies":    "movie",
		"actors":    "actor",
		"actresses": "actress",
		"queries":   "query",
		"people":    "person",
		"children":  "child",
		"MOVIES":    "MOVIE",
		"heroes":    "hero",
		"status":    "status",
		"analysis":  "analysis",
		"boss":      "boss",
		"genres":    "genre",
	}
	for in, want := range cases {
		if got := Singularize(in); got != want {
			t.Errorf("Singularize(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPluralizeSingularizeRoundTrip checks the property that regular nouns
// survive a pluralize/singularize round trip.
func TestPluralizeSingularizeRoundTrip(t *testing.T) {
	for _, w := range []string{"movie", "actor", "director", "genre", "cast",
		"role", "title", "department", "employee", "manager", "query", "table"} {
		if got := Singularize(Pluralize(w)); got != w {
			t.Errorf("round trip %q -> %q -> %q", w, Pluralize(w), got)
		}
	}
}

func TestIndefiniteArticle(t *testing.T) {
	cases := map[string]string{
		"actor":       "an",
		"movie":       "a",
		"hour":        "an",
		"user":        "a",
		"SQL query":   "an",
		"employee":    "an",
		"director":    "a",
		"index":       "an",
		"one-liner":   "a",
		"uniform":     "a",
		"honest user": "an",
		"":            "a",
	}
	for in, want := range cases {
		if got := IndefiniteArticle(in); got != want {
			t.Errorf("IndefiniteArticle(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWithArticle(t *testing.T) {
	if got := WithArticle("actor"); got != "an actor" {
		t.Errorf("WithArticle = %q", got)
	}
}

func TestJoinList(t *testing.T) {
	cases := []struct {
		items []string
		want  string
	}{
		{nil, ""},
		{[]string{"a"}, "a"},
		{[]string{"a", "b"}, "a and b"},
		{[]string{"a", "b", "c"}, "a, b, and c"},
		{[]string{"Match Point (2005)", "Melinda and Melinda (2004)", "Anything Else (2003)"},
			"Match Point (2005), Melinda and Melinda (2004), and Anything Else (2003)"},
	}
	for _, c := range cases {
		if got := JoinAnd(c.items); got != c.want {
			t.Errorf("JoinAnd(%v) = %q, want %q", c.items, got, c.want)
		}
	}
	if got := JoinOr([]string{"x", "y"}); got != "x or y" {
		t.Errorf("JoinOr = %q", got)
	}
}

func TestPossessive(t *testing.T) {
	cases := map[string]string{
		"Woody Allen": "Woody Allen's",
		"actors":      "actors'",
		"Brad Pitt":   "Brad Pitt's",
		"":            "",
	}
	for in, want := range cases {
		if got := Possessive(in); got != want {
			t.Errorf("Possessive(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestVerbAgreement(t *testing.T) {
	cases := []struct {
		verb  string
		count int
		want  string
	}{
		{"play", 1, "plays"},
		{"play", 2, "play"},
		{"be", 1, "is"},
		{"be", 3, "are"},
		{"have", 1, "has"},
		{"have", 2, "have"},
		{"do", 1, "does"},
		{"watch", 1, "watches"},
		{"fly", 1, "flies"},
		{"go", 1, "goes"},
		{"include", 1, "includes"},
	}
	for _, c := range cases {
		if got := VerbAgreement(c.verb, c.count); got != c.want {
			t.Errorf("VerbAgreement(%q,%d) = %q, want %q", c.verb, c.count, got, c.want)
		}
	}
}

func TestNumberWord(t *testing.T) {
	cases := map[int]string{
		0: "zero", 1: "one", 7: "seven", 13: "thirteen", 20: "twenty",
		21: "twenty-one", 42: "forty-two", 99: "ninety-nine",
		100: "100", -3: "-3",
	}
	for in, want := range cases {
		if got := NumberWord(in); got != want {
			t.Errorf("NumberWord(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestCountNoun(t *testing.T) {
	cases := []struct {
		n    int
		noun string
		want string
	}{
		{0, "movie", "no movies"},
		{1, "movie", "one movie"},
		{3, "genre", "three genres"},
		{2, "actress", "two actresses"},
	}
	for _, c := range cases {
		if got := CountNoun(c.n, c.noun); got != c.want {
			t.Errorf("CountNoun(%d,%q) = %q, want %q", c.n, c.noun, got, c.want)
		}
	}
}

func TestFormatDate(t *testing.T) {
	d := time.Date(1935, time.December, 1, 0, 0, 0, 0, time.UTC)
	if got := FormatDate(d); got != "December 1, 1935" {
		t.Errorf("FormatDate = %q", got)
	}
}

func TestParseDate(t *testing.T) {
	for _, in := range []string{"1935-12-01", "December 1, 1935"} {
		d, err := ParseDate(in)
		if err != nil {
			t.Fatalf("ParseDate(%q): %v", in, err)
		}
		if FormatDate(d) != "December 1, 1935" {
			t.Errorf("ParseDate(%q) round-trips to %q", in, FormatDate(d))
		}
	}
	if _, err := ParseDate("not a date"); err == nil {
		t.Error("ParseDate accepted garbage")
	}
}

func TestSentence(t *testing.T) {
	cases := map[string]string{
		"hello world":             "Hello world.",
		"already done.":           "Already done.",
		"  spaced   out  ":        "Spaced out.",
		"":                        "",
		"is it a question?":       "Is it a question?",
		"find movies , with gap":  "Find movies, with gap.",
		"woody allen was born in": "Woody allen was born in.",
	}
	for in, want := range cases {
		if got := Sentence(in); got != want {
			t.Errorf("Sentence(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCollapseSpaces(t *testing.T) {
	cases := map[string]string{
		"a  b":      "a b",
		"a , b":     "a, b",
		"a\t\nb":    "a b",
		" leading":  "leading",
		"trailing ": "trailing",
		"x ( y )":   "x ( y)",
	}
	for in, want := range cases {
		if got := CollapseSpaces(in); got != want {
			t.Errorf("CollapseSpaces(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHumanize(t *testing.T) {
	cases := map[string]string{
		"BDATE":     "birth date",
		"BLOCATION": "birth location",
		"DNAME":     "name",
		"title":     "title",
		"birthDate": "birth date",
		"movie_id":  "movie identifier",
		"sal":       "salary",
		"mgr":       "manager",
		"":          "",
	}
	for in, want := range cases {
		if got := Humanize(in); got != want {
			t.Errorf("Humanize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSplitIdentifier(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"birthDate", []string{"birth", "Date"}},
		{"BIRTH_DATE", []string{"BIRTH", "DATE"}},
		{"movie-id", []string{"movie", "id"}},
		{"HTTPServer", []string{"HTTP", "Server"}},
		{"simple", []string{"simple"}},
	}
	for _, c := range cases {
		got := SplitIdentifier(c.in)
		if len(got) != len(c.want) {
			t.Errorf("SplitIdentifier(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitIdentifier(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestTitleWords(t *testing.T) {
	if got := TitleWords("match_point"); got != "Match Point" {
		t.Errorf("TitleWords = %q", got)
	}
}

func TestOrdinal(t *testing.T) {
	cases := map[int]string{
		1: "first", 2: "second", 3: "third", 11: "11th", 21: "21st",
		22: "22nd", 23: "23rd", 104: "104th", 111: "111th", 112: "112th",
	}
	for in, want := range cases {
		if got := Ordinal(in); got != want {
			t.Errorf("Ordinal(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestCapitalizeDecapitalize(t *testing.T) {
	if got := Capitalize("movies"); got != "Movies" {
		t.Errorf("Capitalize = %q", got)
	}
	if got := Decapitalize("Find movies"); got != "find movies" {
		t.Errorf("Decapitalize = %q", got)
	}
	if got := Decapitalize("SQL is fine"); got != "SQL is fine" {
		t.Errorf("Decapitalize acronym = %q", got)
	}
	if got := Capitalize(""); got != "" {
		t.Errorf("Capitalize empty = %q", got)
	}
}

// Property: Sentence output always starts with an uppercase letter (when it
// has a letter at all) and ends with terminal punctuation.
func TestSentenceProperty(t *testing.T) {
	f := func(s string) bool {
		out := Sentence(s)
		if out == "" {
			return true
		}
		last := out[len(out)-1]
		if last != '.' && last != '!' && last != '?' {
			return false
		}
		for _, r := range out {
			if unicode.IsLetter(r) {
				// Some lowercase letters (e.g. math-alphabet runes like 𝝍)
				// have no uppercase mapping; capitalization cannot change
				// them, so the property only binds mappable letters.
				return unicode.IsUpper(r) || !unicode.IsLower(r) || unicode.ToUpper(r) == r
			}
			break
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CollapseSpaces is idempotent and never contains double spaces.
func TestCollapseSpacesProperty(t *testing.T) {
	f := func(s string) bool {
		once := CollapseSpaces(s)
		return CollapseSpaces(once) == once && !strings.Contains(once, "  ")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: JoinList of n>=3 items contains every item and exactly one
// conjunction occurrence at the end.
func TestJoinListProperty(t *testing.T) {
	f := func(raw []string) bool {
		items := make([]string, 0, len(raw))
		for _, s := range raw {
			s = strings.ReplaceAll(s, ",", "")
			s = strings.ReplaceAll(s, " and ", " ")
			if strings.TrimSpace(s) != "" {
				items = append(items, s)
			}
		}
		out := JoinAnd(items)
		for _, it := range items {
			if !strings.Contains(out, it) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkPluralize(b *testing.B) {
	words := []string{"movie", "actor", "query", "church", "person", "hero"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Pluralize(words[i%len(words)])
	}
}

func BenchmarkJoinAnd(b *testing.B) {
	items := []string{"Match Point (2005)", "Melinda and Melinda (2004)", "Anything Else (2003)"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		JoinAnd(items)
	}
}

func BenchmarkSentence(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sentence("woody allen was born in Brooklyn ,  New York, USA on December 1, 1935")
	}
}
