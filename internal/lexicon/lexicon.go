// Package lexicon provides the morphological and orthographic substrate used
// by every text-producing component in the system: pluralization, indefinite
// articles, verb agreement, list conjunction, capitalization, number words,
// and date rendering.
//
// The paper's narratives ("Woody Allen was born in Brooklyn, New York, USA on
// December 1, 1935. As a director, Woody Allen's work includes Match Point
// (2005), Melinda and Melinda (2004), and Anything Else (2003).") depend on
// exactly this machinery: Oxford-comma lists, possessives, and date formats.
// Keeping it in one tested package means the data-to-text and query-to-text
// translators never hand-roll English morphology.
package lexicon

import (
	"fmt"
	"strings"
	"time"
	"unicode"
)

// irregularPlurals maps singular nouns with irregular plural forms to their
// plurals. The table covers the nouns that appear in database schemas and in
// the generated narratives; Pluralize falls back to rule-based inflection for
// anything else.
var irregularPlurals = map[string]string{
	"person":    "people",
	"child":     "children",
	"man":       "men",
	"woman":     "women",
	"foot":      "feet",
	"tooth":     "teeth",
	"goose":     "geese",
	"mouse":     "mice",
	"datum":     "data",
	"index":     "indexes", // database usage, not "indices"
	"schema":    "schemas",
	"criterion": "criteria",
	"medium":    "media",
	"analysis":  "analyses",
	"basis":     "bases",
	"axis":      "axes",
	"crisis":    "crises",
	"thesis":    "theses",
	"life":      "lives",
	"knife":     "knives",
	"wife":      "wives",
	"leaf":      "leaves",
	"shelf":     "shelves",
	"half":      "halves",
	"self":      "selves",
	"staff":     "staffs",
	"series":    "series",
	"species":   "species",
	"sheep":     "sheep",
	"deer":      "deer",
	"fish":      "fish",
	"movie":     "movies",
}

// uncountable nouns never take a plural suffix.
var uncountable = map[string]bool{
	"information": true,
	"equipment":   true,
	"money":       true,
	"rice":        true,
	"news":        true,
	"software":    true,
	"metadata":    true,
	"feedback":    true,
}

// Pluralize returns the English plural of a singular noun. Case of the first
// letter is preserved; the rest of the inflection is lowercase unless the
// word is fully uppercase (in which case the suffix is uppercased too, so
// "MOVIE" becomes "MOVIES").
func Pluralize(noun string) string {
	if noun == "" {
		return ""
	}
	lower := strings.ToLower(noun)
	if uncountable[lower] {
		return noun
	}
	if p, ok := irregularPlurals[lower]; ok {
		return matchCase(noun, p)
	}
	upper := noun == strings.ToUpper(noun) && strings.ToLower(noun) != noun
	suffix := func(s string) string {
		if upper {
			return strings.ToUpper(s)
		}
		return s
	}
	switch {
	case strings.HasSuffix(lower, "s"), strings.HasSuffix(lower, "x"),
		strings.HasSuffix(lower, "z"), strings.HasSuffix(lower, "ch"),
		strings.HasSuffix(lower, "sh"):
		return noun + suffix("es")
	case strings.HasSuffix(lower, "y") && len(lower) > 1 && !isVowel(rune(lower[len(lower)-2])):
		return noun[:len(noun)-1] + suffix("ies")
	case strings.HasSuffix(lower, "o") && len(lower) > 1 && !isVowel(rune(lower[len(lower)-2])):
		// hero -> heroes, but photo/piano style exceptions below
		switch lower {
		case "photo", "piano", "halo", "solo", "memo", "logo", "demo", "repo", "info", "video", "audio", "studio", "portfolio", "scenario":
			return noun + suffix("s")
		}
		return noun + suffix("es")
	default:
		return noun + suffix("s")
	}
}

// Singularize is the approximate inverse of Pluralize. It is used when a
// relation name is plural ("MOVIES") but a sentence needs the singular
// concept ("movie"). It is intentionally conservative: if no rule applies,
// the input is returned unchanged.
func Singularize(noun string) string {
	if noun == "" {
		return ""
	}
	lower := strings.ToLower(noun)
	for s, p := range irregularPlurals {
		if p == lower {
			return matchCase(noun, s)
		}
	}
	if uncountable[lower] {
		return noun
	}
	switch {
	case strings.HasSuffix(lower, "ies") && len(lower) > 3:
		return noun[:len(noun)-3] + matchSuffixCase(noun, "y")
	case strings.HasSuffix(lower, "sses"), strings.HasSuffix(lower, "xes"),
		strings.HasSuffix(lower, "zes"), strings.HasSuffix(lower, "ches"),
		strings.HasSuffix(lower, "shes"), strings.HasSuffix(lower, "oes"):
		return noun[:len(noun)-2]
	case strings.HasSuffix(lower, "ss"), strings.HasSuffix(lower, "us"), strings.HasSuffix(lower, "is"):
		return noun
	case strings.HasSuffix(lower, "s") && len(lower) > 1:
		return noun[:len(noun)-1]
	default:
		return noun
	}
}

// matchCase transfers the capitalization pattern of src onto repl: all-caps
// stays all-caps, leading-capital stays leading-capital, otherwise lowercase.
func matchCase(src, repl string) string {
	switch {
	case src == strings.ToUpper(src) && strings.ToLower(src) != src:
		return strings.ToUpper(repl)
	case len(src) > 0 && unicode.IsUpper(rune(src[0])):
		return Capitalize(repl)
	default:
		return repl
	}
}

// matchSuffixCase returns suffix uppercased when src is fully uppercase.
func matchSuffixCase(src, suffix string) string {
	if src == strings.ToUpper(src) && strings.ToLower(src) != src {
		return strings.ToUpper(suffix)
	}
	return suffix
}

func isVowel(r rune) bool {
	switch unicode.ToLower(r) {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// IndefiniteArticle returns "a" or "an" for the given noun phrase, based on
// the sound of its first word ("an actor", "a movie", "an hour", "a user").
func IndefiniteArticle(phrase string) string {
	word := strings.ToLower(firstWord(phrase))
	if word == "" {
		return "a"
	}
	// Words that start with a vowel letter but a consonant sound.
	for _, p := range []string{"use", "user", "uni", "eu", "one", "once", "ufo", "url", "uuid"} {
		if strings.HasPrefix(word, p) {
			return "a"
		}
	}
	// Words that start with a consonant letter but a vowel sound.
	for _, p := range []string{"hour", "honest", "honor", "heir", "sql", "xml", "html", "mvp", "fbi", "rdf"} {
		if word == p || strings.HasPrefix(word, p) {
			return "an"
		}
	}
	if isVowel(rune(word[0])) {
		return "an"
	}
	return "a"
}

// WithArticle prefixes phrase with its indefinite article: "an actor".
func WithArticle(phrase string) string {
	return IndefiniteArticle(phrase) + " " + phrase
}

func firstWord(s string) string {
	s = strings.TrimSpace(s)
	for i, r := range s {
		if unicode.IsSpace(r) {
			return s[:i]
		}
	}
	return s
}

// Capitalize uppercases the first letter of s, leaving the rest unchanged.
func Capitalize(s string) string {
	for i, r := range s {
		return s[:i] + string(unicode.ToUpper(r)) + s[i+len(string(r)):]
	}
	return s
}

// Decapitalize lowercases the first letter of s unless the first word looks
// like a proper noun or acronym (entirely uppercase beyond the first rune).
func Decapitalize(s string) string {
	w := firstWord(s)
	if len(w) > 1 && strings.ToUpper(w[1:]) == w[1:] && strings.ToLower(w[1:]) != w[1:] {
		return s // acronym such as SQL
	}
	for i, r := range s {
		return s[:i] + string(unicode.ToLower(r)) + s[i+len(string(r)):]
	}
	return s
}

// JoinList renders items as an English list with an Oxford comma:
//
//	[]                  -> ""
//	[a]                 -> "a"
//	[a b]               -> "a and b"
//	[a b c]             -> "a, b, and c"
//
// The conjunction is configurable so that disjunctive lists ("a, b, or c")
// reuse the same code.
func JoinList(items []string, conjunction string) string {
	switch len(items) {
	case 0:
		return ""
	case 1:
		return items[0]
	case 2:
		return items[0] + " " + conjunction + " " + items[1]
	default:
		return strings.Join(items[:len(items)-1], ", ") + ", " + conjunction + " " + items[len(items)-1]
	}
}

// JoinAnd is JoinList with "and".
func JoinAnd(items []string) string { return JoinList(items, "and") }

// JoinOr is JoinList with "or".
func JoinOr(items []string) string { return JoinList(items, "or") }

// Possessive returns the English possessive form of a name:
// "Woody Allen" -> "Woody Allen's", "Actors" -> "Actors'".
func Possessive(name string) string {
	if name == "" {
		return ""
	}
	if strings.HasSuffix(name, "s") || strings.HasSuffix(name, "S") {
		return name + "'"
	}
	return name + "'s"
}

// VerbAgreement inflects a base-form verb for the given subject count:
// ("play", 1) -> "plays"; ("play", 2) -> "play". Irregulars "be" and "have"
// are handled explicitly.
func VerbAgreement(verb string, count int) string {
	singular := count == 1
	switch strings.ToLower(verb) {
	case "be":
		if singular {
			return "is"
		}
		return "are"
	case "have":
		if singular {
			return "has"
		}
		return "have"
	case "do":
		if singular {
			return "does"
		}
		return "do"
	}
	if !singular {
		return verb
	}
	lower := strings.ToLower(verb)
	switch {
	case strings.HasSuffix(lower, "s"), strings.HasSuffix(lower, "x"),
		strings.HasSuffix(lower, "z"), strings.HasSuffix(lower, "ch"),
		strings.HasSuffix(lower, "sh"), strings.HasSuffix(lower, "o"):
		return verb + "es"
	case strings.HasSuffix(lower, "y") && len(lower) > 1 && !isVowel(rune(lower[len(lower)-2])):
		return verb[:len(verb)-1] + "ies"
	default:
		return verb + "s"
	}
}

var smallNumbers = []string{
	"zero", "one", "two", "three", "four", "five", "six", "seven", "eight",
	"nine", "ten", "eleven", "twelve", "thirteen", "fourteen", "fifteen",
	"sixteen", "seventeen", "eighteen", "nineteen",
}

var tensNumbers = []string{
	"", "", "twenty", "thirty", "forty", "fifty", "sixty", "seventy",
	"eighty", "ninety",
}

// NumberWord spells out small non-negative integers ("three movies"); numbers
// of 100 or more, and negatives, are rendered as digits, matching common
// style guidance for running text.
func NumberWord(n int) string {
	if n < 0 || n >= 100 {
		return fmt.Sprintf("%d", n)
	}
	if n < 20 {
		return smallNumbers[n]
	}
	t, r := n/10, n%10
	if r == 0 {
		return tensNumbers[t]
	}
	return tensNumbers[t] + "-" + smallNumbers[r]
}

// CountNoun renders a counted noun phrase: (0,"movie") -> "no movies",
// (1,"movie") -> "one movie", (3,"genre") -> "three genres".
func CountNoun(n int, noun string) string {
	switch {
	case n == 0:
		return "no " + Pluralize(noun)
	case n == 1:
		return "one " + noun
	default:
		return NumberWord(n) + " " + Pluralize(noun)
	}
}

// FormatDate renders a time as it appears in the paper's narratives:
// "December 1, 1935".
func FormatDate(t time.Time) string {
	return fmt.Sprintf("%s %d, %d", t.Month().String(), t.Day(), t.Year())
}

// ParseDate parses the date formats the movie dataset stores birth dates in:
// "1935-12-01" (ISO) or "December 1, 1935" (narrative form).
func ParseDate(s string) (time.Time, error) {
	for _, layout := range []string{"2006-01-02", "January 2, 2006", "Jan 2, 2006"} {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("lexicon: unrecognized date %q", s)
}

// Sentence finalizes a fragment into a sentence: trims whitespace,
// capitalizes the first letter, collapses internal runs of spaces, and
// guarantees terminal punctuation.
func Sentence(fragment string) string {
	s := CollapseSpaces(strings.TrimSpace(fragment))
	if s == "" {
		return ""
	}
	s = Capitalize(s)
	switch s[len(s)-1] {
	case '.', '!', '?':
		return s
	}
	return s + "."
}

// CollapseSpaces replaces every run of whitespace with a single space and
// removes spaces that precede punctuation (", ." -> ",").
func CollapseSpaces(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := false
	for _, r := range s {
		if unicode.IsSpace(r) {
			space = true
			continue
		}
		if space {
			if b.Len() > 0 && !isClosingPunct(r) {
				b.WriteByte(' ')
			}
			space = false
		}
		b.WriteRune(r)
	}
	return b.String()
}

func isClosingPunct(r rune) bool {
	switch r {
	case ',', '.', ';', ':', '!', '?', ')':
		return true
	}
	return false
}

// Humanize converts a schema identifier into words suitable for prose:
// "BLOCATION" -> "blocation" is wrong, so known database abbreviation
// prefixes are expanded: "BDATE" -> "birth date", "BLOCATION" ->
// "birth location", "DNAME" -> "name", "MGR" -> "manager", "SAL" ->
// "salary". Snake and camel case are split into words and lowercased.
func Humanize(ident string) string {
	if ident == "" {
		return ""
	}
	if h, ok := identifierGloss[strings.ToLower(ident)]; ok {
		return h
	}
	words := SplitIdentifier(ident)
	for i, w := range words {
		lw := strings.ToLower(w)
		if g, ok := identifierGloss[lw]; ok {
			words[i] = g
		} else {
			words[i] = lw
		}
	}
	return strings.Join(words, " ")
}

// identifierGloss expands the abbreviations used by the paper's schemas.
var identifierGloss = map[string]string{
	"bdate":     "birth date",
	"blocation": "birth location",
	"dname":     "name",
	"mid":       "movie",
	"aid":       "actor",
	"did":       "department",
	"eid":       "employee",
	"mgr":       "manager",
	"sal":       "salary",
	"emp":       "employee",
	"dept":      "department",
	"dpt":       "department",
	"id":        "identifier",
	"attr":      "attribute",
	"rel":       "relation",
	"num":       "number",
	"qty":       "quantity",
	"addr":      "address",
	"loc":       "location",
	"desc":      "description",
	"yr":        "year",
}

// SplitIdentifier splits a schema identifier into its component words,
// handling snake_case, kebab-case, camelCase, and ALLCAPS runs:
// "birthDate" -> [birth Date], "BIRTH_DATE" -> [BIRTH DATE].
func SplitIdentifier(ident string) []string {
	var words []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			words = append(words, cur.String())
			cur.Reset()
		}
	}
	runes := []rune(ident)
	for i, r := range runes {
		switch {
		case r == '_' || r == '-' || r == ' ' || r == '.':
			flush()
		case unicode.IsUpper(r) && i > 0 && unicode.IsLower(runes[i-1]):
			flush()
			cur.WriteRune(r)
		case unicode.IsUpper(r) && i > 0 && i+1 < len(runes) && unicode.IsUpper(runes[i-1]) && unicode.IsLower(runes[i+1]):
			flush()
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return words
}

// TitleWords renders an identifier as a title: "match_point" -> "Match Point".
func TitleWords(ident string) string {
	words := SplitIdentifier(ident)
	for i, w := range words {
		words[i] = Capitalize(strings.ToLower(w))
	}
	return strings.Join(words, " ")
}

// Ordinal renders 1 -> "first", 2 -> "second", ... falling back to "Nth".
func Ordinal(n int) string {
	switch n {
	case 1:
		return "first"
	case 2:
		return "second"
	case 3:
		return "third"
	case 4:
		return "fourth"
	case 5:
		return "fifth"
	case 6:
		return "sixth"
	case 7:
		return "seventh"
	case 8:
		return "eighth"
	case 9:
		return "ninth"
	case 10:
		return "tenth"
	}
	suffix := "th"
	switch n % 10 {
	case 1:
		if n%100 != 11 {
			suffix = "st"
		}
	case 2:
		if n%100 != 12 {
			suffix = "nd"
		}
	case 3:
		if n%100 != 13 {
			suffix = "rd"
		}
	}
	return fmt.Sprintf("%d%s", n, suffix)
}
