package storage

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/value"
)

// This file implements MVCC snapshot reads. Each table is conceptually a list
// of immutable sealed segments — the full zones whose column ranges, zone
// maps, frame-of-reference chunks, and dictionary pages no writer will ever
// touch again — plus a small mutable tail (the partial boundary zone still
// being appended to). A commit installs a new version: every dirty table is
// frozen into an immutable *Table view that shares the sealed prefix of each
// vector and privately copies only the boundary state (the partial null-bitmap
// word, the partial zone summary, the per-zone bases), and the whole version
// publishes through one atomic pointer.
//
// Readers pin a Snapshot once and run the entire pipeline against it with no
// locks: a sustained writer — or a checkpoint — never blocks them, and they
// never observe a half-committed statement. The freeze cost is proportional to
// the boundary, not the data: O(zones + attrs) per dirty table, so a bulk load
// publishing per statement stays linear.
//
// Safety rests on a handful of invariants, enforced across column.go,
// zonemap.go, and storage.go:
//
//   - Appends (INSERT) write only at positions >= the frozen row count, which
//     is beyond every frozen slice's length — sharing the prefix is race-free.
//   - In-place mutators (DELETE compaction, UPDATE) unshare first:
//     prepareMutate clones the payload vectors, null words, and zone slice of
//     a shared table before the first row moves.
//   - The one in-place append-path mutation — a frame-of-reference rebase of
//     the partial chunk — clones the chunk when the d8Cow flag marks it
//     shared.
//   - Index maps are shared under a per-table idxMu; probes filter positions
//     at or past the frozen row count, and DELETE/UPDATE swap in freshly
//     built maps instead of mutating the shared ones.
//   - Dictionary maps are shared under codeMu; compaction replaces structures
//     instead of mutating them, and only after prepareMutate unshared the
//     code vector.
//
// Sequence numbers: on a durable database the snapshot seq IS the WAL commit
// seq — a snapshot names exactly the fsynced prefix it reflects, and the
// checkpoint serializes a pinned snapshot. In-memory databases count their
// own publishes. Either way seqs only grow, so caches keyed by seq can never
// serve a stale result.

// TableSource is a read surface the engine can plan and execute against:
// either the live *Database (DML statements read their own writes) or an
// immutable *Snapshot (concurrent readers).
type TableSource interface {
	// Table returns the named relation's table view, or nil.
	Table(name string) *Table
	// Schema returns the catalog schema.
	Schema() *catalog.Schema
	// Stats summarizes table cardinalities by relation name.
	Stats() map[string]int
	// DistinctCount returns the distinct non-NULL count of an attribute.
	DistinctCount(relName, attr string) (int, error)
	// Snapshot pins the current version (a Snapshot returns itself).
	Snapshot() *Snapshot
}

// Snapshot is one immutable published version: the frozen tables, the commit
// sequence that produced them, and the segment/tail shape counters surfaced
// on /stats. It is safe for any number of concurrent readers and never
// changes after publication.
type Snapshot struct {
	seq    uint64
	schema *catalog.Schema
	tables map[string]*Table
}

// Seq returns the commit sequence this snapshot reflects. On a durable
// database it equals the WAL sequence of the last committed batch.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Schema returns the catalog schema.
func (s *Snapshot) Schema() *catalog.Schema { return s.schema }

// Table returns the frozen table view for the named relation, or nil.
func (s *Snapshot) Table(name string) *Table { return s.tables[strings.ToLower(name)] }

// TableNames returns the sorted relation names in the snapshot.
func (s *Snapshot) TableNames() []string {
	names := make([]string, 0, len(s.tables))
	for _, t := range s.tables {
		names = append(names, t.rel.Name)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns the snapshot itself: a pinned version re-pins to the same
// version, which is what makes TableSource uniform for the engine.
func (s *Snapshot) Snapshot() *Snapshot { return s }

// Stats summarizes table cardinalities at this snapshot.
func (s *Snapshot) Stats() map[string]int {
	out := make(map[string]int, len(s.tables))
	for _, t := range s.tables {
		out[t.rel.Name] = t.rows
	}
	return out
}

// DistinctCount returns the number of distinct non-NULL values of the named
// attribute as of this snapshot, from the frozen statistics view.
func (s *Snapshot) DistinctCount(relName, attr string) (int, error) {
	tbl := s.Table(relName)
	if tbl == nil {
		return 0, fmt.Errorf("storage: unknown relation %q", relName)
	}
	p := tbl.rel.AttrIndex(attr)
	if p < 0 {
		return 0, fmt.Errorf("storage: unknown attribute %s.%s", relName, attr)
	}
	return tbl.statsView.Attrs[p].Distinct, nil
}

// SnapshotStats describes the published version for /stats: how much of the
// data sits in immutable sealed segments versus mutable tails, and how many
// versions have been installed.
type SnapshotStats struct {
	// Seq is the current version's commit sequence.
	Seq uint64
	// Published counts versions installed since the database was created.
	Published uint64
	// Tables is the table count in the current version.
	Tables int
	// SealedZones counts immutable full zones across the version's tables —
	// the sealed-segment inventory readers scan without any lock.
	SealedZones int
	// TailRows counts rows in the mutable boundary zones (at most one per
	// table).
	TailRows int
	// Rows is the total row count across tables at the current version.
	Rows int
}

// SnapshotStats reports the current version's segment/snapshot counters.
func (db *Database) SnapshotStats() SnapshotStats {
	snap := db.Snapshot()
	out := SnapshotStats{
		Seq:       snap.seq,
		Published: db.published.Load(),
		Tables:    len(snap.tables),
	}
	for _, t := range snap.tables {
		sealed := t.rows >> ZoneShift
		out.SealedZones += sealed
		out.TailRows += t.rows - sealed<<ZoneShift
		out.Rows += t.rows
	}
	return out
}

// Snapshot pins the currently published version. The returned snapshot is
// immutable: readers holding it see the exact committed state it names no
// matter how many writers commit afterwards.
func (db *Database) Snapshot() *Snapshot {
	return db.version.Load()
}

// Published counts versions installed since the database was created. Two
// loads bracketing a read tell how many writers committed while it ran.
func (db *Database) Published() uint64 {
	return db.published.Load()
}

// publishLocked freezes every dirty table and installs a new version at seq.
// The caller holds db.mu. Clean tables re-use their previous frozen view, so
// the cost of a publish is proportional to what the statement touched. When
// nothing is dirty and a version exists, the publish is skipped entirely —
// the current version already reflects the state (EnableSortedDict forces a
// table dirty to re-publish a flag change at the same seq).
func (db *Database) publishLocked(seq uint64) {
	if snap, _ := db.buildVersionLocked(seq); snap != nil {
		db.installVersion(snap)
	}
}

// buildVersionLocked freezes the dirty tables into a new version at seq but
// does not install it; the caller holds db.mu. It returns nil when no publish
// is needed (nothing dirty, or recovery is replaying). The second return
// lists the tables that were frozen, so a durable commit whose WAL flush
// fails can re-mark them dirty instead of installing a version the log never
// acknowledged.
func (db *Database) buildVersionLocked(seq uint64) (*Snapshot, []*Table) {
	if db.recovering.Load() {
		return nil, nil // recovery publishes once, at the end, not per replayed op
	}
	prev := db.version.Load()
	dirty := false
	for _, t := range db.tables {
		if t.dirty {
			dirty = true
			break
		}
	}
	if !dirty && prev != nil && len(prev.tables) == len(db.tables) {
		return nil, nil
	}
	tables := make(map[string]*Table, len(db.tables))
	var frozen []*Table
	for name, t := range db.tables {
		if !t.dirty && prev != nil {
			if pt, ok := prev.tables[name]; ok {
				tables[name] = pt
				continue
			}
		}
		tables[name] = t.freeze()
		t.dirty = false
		frozen = append(frozen, t)
	}
	db.pubSeq = seq
	return &Snapshot{seq: seq, schema: db.schema, tables: tables}, frozen
}

// installVersion makes a built version the published one.
func (db *Database) installVersion(snap *Snapshot) {
	db.published.Add(1)
	db.version.Store(snap)
}

// redirty re-marks tables whose freeze belonged to a version that can no
// longer be installed (the WAL append or fsync behind it failed and latched
// the layer): readers keep the last acknowledged version, and a restart —
// which re-runs recovery — publishes whatever the log salvages.
func (db *Database) redirty(frozen []*Table) {
	db.mu.Lock()
	for _, t := range frozen {
		t.dirty = true
	}
	db.mu.Unlock()
}

// nextPubSeqLocked advances the in-memory publish sequence; durable commits
// use the WAL sequence instead so snapshot seq == committed WAL prefix.
func (db *Database) nextPubSeqLocked() uint64 {
	db.pubSeq++
	return db.pubSeq
}

// freeze builds an immutable view of the table at its current row count. The
// sealed prefix of every vector is shared; only boundary state is copied.
// After a freeze the live table is marked shared, which arms the
// copy-on-write paths for the next in-place mutation.
func (t *Table) freeze() *Table {
	rows := t.rows
	ft := &Table{
		rel:       t.rel,
		rows:      rows,
		owner:     t.owner,
		pk:        t.pk,
		pkPos:     t.pkPos,
		secondary: t.secondary,
		idxMu:     t.idxMu,
		frozen:    true,
	}
	ft.cols = make([]column, len(t.cols))
	for i := range t.cols {
		t.cols[i].freezeInto(&ft.cols[i], rows)
	}
	sv := t.Stats()
	ft.statsView = &sv
	t.shared = true
	return ft
}

// freezeInto populates fc as an immutable view of c's first rows values.
func (c *column) freezeInto(fc *column, rows int) {
	fc.kind = c.kind
	fc.forOff = true
	switch c.kind {
	case value.Int, value.Date:
		fc.ints = c.ints[:rows:rows]
	case value.Float:
		fc.flts = c.flts[:rows:rows]
	case value.Text:
		fc.codes = c.codes[:rows:rows]
		fc.dict = c.dict.freeze()
	case value.Bool:
		fc.bls = c.bls[:rows:rows]
	}
	// Null bitmap: share the full words, privately copy the masked boundary
	// word the writer is still filling.
	fullWords := rows >> 6
	if fullWords > len(c.nulls.words) {
		fullWords = len(c.nulls.words)
	}
	fc.nulls.words = c.nulls.words[:fullWords:fullWords]
	if rem := rows & 63; rem != 0 && fullWords < len(c.nulls.words) {
		fc.nulls.tail = c.nulls.words[fullWords] & (1<<uint(rem) - 1)
	}
	// Zone maps: share the sealed zones, privately copy the partial boundary
	// zone. If the zones are mid-rebuild (they never are at a commit point,
	// but degrade gracefully rather than corrupt), the frozen view simply
	// reports unsynced zones and the engine falls back to full scans.
	if c.zrows != rows {
		return
	}
	fc.zrows = rows
	fullZones := rows >> ZoneShift
	if fullZones > len(c.zones) {
		fullZones = len(c.zones)
	}
	fc.zones = c.zones[:fullZones:fullZones]
	if fullZones < len(c.zones) {
		fc.ztail = c.zones[fullZones]
		fc.hasZTail = true
	}
	// Frame-of-reference: share the sealed chunks, cap the partial one, and
	// privately copy the bases (a writer rebase overwrites the boundary base
	// in place). The writer's partial chunk is marked copy-on-write so the
	// one in-place mutation — a rebase shift — clones before writing.
	if c.forOff || c.d8Rows() != rows {
		return
	}
	fc.forOff = false
	fc.fb = append([]int64(nil), c.fb...)
	fc.d8 = make([][]uint8, len(c.d8))
	copy(fc.d8, c.d8)
	if n := len(fc.d8); n > 0 {
		last := fc.d8[n-1]
		inZone := rows - (n-1)<<ZoneShift
		fc.d8[n-1] = last[:inZone:inZone]
		if inZone < ZoneRows {
			c.d8Cow = true
		}
	}
}

// prepareMutate unshares a table from every published snapshot ahead of an
// in-place mutation (DELETE compaction, UPDATE overwrite): the payload
// vectors, null words, and zone summaries are cloned so frozen readers keep
// the originals. Append-only paths never call it — they extend past every
// frozen view's length. The rollback path doesn't either: it only truncates
// headers and re-extends at or past the frozen boundary.
func (t *Table) prepareMutate() {
	if !t.shared {
		return
	}
	t.shared = false
	for j := range t.cols {
		c := &t.cols[j]
		switch c.kind {
		case value.Int, value.Date:
			c.ints = append([]int64(nil), c.ints...)
		case value.Float:
			c.flts = append([]float64(nil), c.flts...)
		case value.Text:
			c.codes = append([]uint32(nil), c.codes...)
		case value.Bool:
			c.bls = append([]bool(nil), c.bls...)
		}
		c.nulls.words = append([]uint64(nil), c.nulls.words...)
		c.zones = append([]zone(nil), c.zones...)
		if !c.forOff {
			// Chunks themselves are rebuilt (never shifted in place) by the
			// zone rebuild that follows every delete/update, so only the
			// headers need to be private.
			c.fb = append([]int64(nil), c.fb...)
			c.d8 = append([][]uint8(nil), c.d8...)
			c.d8Cow = false
		}
	}
}
