package storage

import (
	"repro/internal/catalog"
	"repro/internal/value"
)

// AttrStats summarizes one attribute for cardinality estimation.
type AttrStats struct {
	// NonNull counts tuples with a non-NULL value.
	NonNull int
	// Distinct counts distinct non-NULL values.
	Distinct int
	// Min and Max bound the non-NULL values (NULL when the column is empty
	// or holds incomparable mixed kinds).
	Min, Max value.Value
}

// TableStats is a point-in-time statistics snapshot the query planner uses
// to estimate selectivities and join cardinalities.
type TableStats struct {
	// Rows is the table cardinality.
	Rows int
	// Attrs holds one entry per attribute, in declaration order.
	Attrs []AttrStats
}

// tableStats is the live, incrementally maintained form. Insert updates it
// in place (the storage contract makes writers exclusive); Delete and Update
// rebuild it together with the indexes.
type tableStats struct {
	attrs []attrStat
}

type attrStat struct {
	// counts holds the set of encoded values seen (value.AppendKey), making
	// distinct counts O(1) to read; Delete/Update rebuild it together with
	// the indexes.
	counts   map[string]struct{}
	nonNull  int
	min, max value.Value
	ordered  bool // false once a comparison failed (mixed kinds): min/max unreliable
}

func (s *tableStats) init(rel *catalog.Relation) {
	s.attrs = make([]attrStat, len(rel.Attributes))
	for i := range s.attrs {
		s.attrs[i].counts = make(map[string]struct{})
		s.attrs[i].ordered = true
	}
}

// add folds one inserted tuple into the statistics. keyBuf is the table's
// writer-side scratch buffer.
func (s *tableStats) add(tup Tuple, keyBuf *[]byte) {
	for i := range s.attrs {
		a := &s.attrs[i]
		v := tup[i]
		if v.IsNull() {
			continue
		}
		a.nonNull++
		*keyBuf = v.AppendKey((*keyBuf)[:0])
		if _, ok := a.counts[string(*keyBuf)]; !ok {
			a.counts[string(*keyBuf)] = struct{}{}
		}
		a.observeBounds(v)
	}
}

func (a *attrStat) observeBounds(v value.Value) {
	if !a.ordered {
		return
	}
	if a.min.IsNull() {
		a.min, a.max = v, v
		return
	}
	if c, err := v.Compare(a.min); err != nil {
		a.ordered = false
		a.min, a.max = value.NewNull(), value.NewNull()
		return
	} else if c < 0 {
		a.min = v
	}
	if c, err := v.Compare(a.max); err != nil {
		a.ordered = false
		a.min, a.max = value.NewNull(), value.NewNull()
	} else if c > 0 {
		a.max = v
	}
}

// rebuild recomputes the statistics from scratch (Delete/Update path, which
// already rebuilds every index).
func (s *tableStats) rebuild(rel *catalog.Relation, tuples []Tuple) {
	s.init(rel)
	var buf []byte
	for _, tup := range tuples {
		s.add(tup, &buf)
	}
}

// Stats returns a snapshot of the table's statistics. Safe for concurrent
// readers under the storage contract (writers are exclusive).
func (t *Table) Stats() TableStats {
	out := TableStats{Rows: len(t.tuples), Attrs: make([]AttrStats, len(t.stats.attrs))}
	for i := range t.stats.attrs {
		a := &t.stats.attrs[i]
		out.Attrs[i] = AttrStats{
			NonNull:  a.nonNull,
			Distinct: len(a.counts),
			Min:      a.min,
			Max:      a.max,
		}
	}
	return out
}
