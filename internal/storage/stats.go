package storage

import (
	"math"

	"repro/internal/catalog"
	"repro/internal/value"
)

// AttrStats summarizes one attribute for cardinality estimation.
type AttrStats struct {
	// NonNull counts rows with a non-NULL value.
	NonNull int
	// Distinct counts distinct non-NULL values.
	Distinct int
	// Min and Max bound the non-NULL values (NULL when the column is empty).
	Min, Max value.Value
}

// TableStats is a point-in-time statistics snapshot the query planner uses
// to estimate selectivities and join cardinalities.
type TableStats struct {
	// Rows is the table cardinality.
	Rows int
	// Zones is the number of ZoneRows-sized zone-map ranges summarizing the
	// table — the morsel count a zone-skipping scan decides over.
	Zones int
	// Attrs holds one entry per attribute, in declaration order.
	Attrs []AttrStats
}

// tableStats is the live, incrementally maintained form. Insert adds, Delete
// removes, Update does both (the storage contract makes writers exclusive).
// Distinct counts are exact: each attribute keeps a count-map from encoded
// value to multiplicity, so removals can retire a value when its count hits
// zero. Bounds are O(1) to extend on insert; a removal that touches the
// current min/max just marks the attribute dirty, and Table.fixStatBounds
// rescans only those columns after the write completes.
type tableStats struct {
	attrs []attrStat
}

type attrStat struct {
	// counts maps encoded values (value.AppendKey) to their multiplicity;
	// its size is the distinct count, read O(1).
	counts   map[string]int
	nonNull  int
	min, max value.Value
	// boundsDirty marks min/max as unreliable after a removal hit them.
	boundsDirty bool
}

func (s *tableStats) init(rel *catalog.Relation) {
	s.attrs = make([]attrStat, len(rel.Attributes))
	for i := range s.attrs {
		s.attrs[i].counts = make(map[string]int)
	}
}

// add folds one inserted tuple into the statistics. keyBuf is the table's
// writer-side scratch buffer.
func (s *tableStats) add(tup Tuple, keyBuf *[]byte) {
	for i := range s.attrs {
		a := &s.attrs[i]
		v := tup[i]
		if v.IsNull() {
			continue
		}
		a.nonNull++
		*keyBuf = v.AppendKey((*keyBuf)[:0])
		a.counts[string(*keyBuf)]++
		a.observeBounds(v)
	}
}

// remove subtracts one deleted (or pre-update) tuple from the statistics.
// Deleting a value equal to the current min or max invalidates that bound;
// the owning Table rescans dirty columns once the write finishes.
func (s *tableStats) remove(tup Tuple, keyBuf *[]byte) {
	for i := range s.attrs {
		a := &s.attrs[i]
		v := tup[i]
		if v.IsNull() {
			continue
		}
		a.nonNull--
		*keyBuf = v.AppendKey((*keyBuf)[:0])
		if n, ok := a.counts[string(*keyBuf)]; ok {
			if n <= 1 {
				delete(a.counts, string(*keyBuf))
			} else {
				a.counts[string(*keyBuf)] = n - 1
			}
		}
		if isNaN(v) {
			// NaN never enters the bounds (observeBounds skips it), so
			// removing one cannot invalidate them. value.Equal would also
			// miss it — NaN != NaN — which used to leave stale NaN bounds
			// behind when a NaN arrived first.
			continue
		}
		if !a.boundsDirty && (v.Equal(a.min) || v.Equal(a.max)) {
			a.boundsDirty = true
		}
	}
}

// isNaN reports whether v is a float NaN — incomparable, so it is excluded
// from min/max bounds everywhere (incremental add/remove, minMax rescans, and
// zone maps all agree on this).
func isNaN(v value.Value) bool {
	return v.Kind() == value.Float && math.IsNaN(v.Float())
}

func (a *attrStat) observeBounds(v value.Value) {
	if a.boundsDirty {
		return // a pending rescan will see this value too
	}
	if isNaN(v) {
		return // incomparable; bounds describe the ordered values
	}
	if a.min.IsNull() {
		a.min, a.max = v, v
		return
	}
	// Columns are typed, so comparisons against same-kind bounds cannot
	// fail; a failure would mean corrupted bounds — rescan to recover.
	if c, err := v.Compare(a.min); err != nil {
		a.boundsDirty = true
		return
	} else if c < 0 {
		a.min = v
	}
	if c, err := v.Compare(a.max); err != nil {
		a.boundsDirty = true
	} else if c > 0 {
		a.max = v
	}
}

// fixStatBounds rescans the column vector of every attribute whose bounds a
// removal invalidated. Called once per Delete/Update, after the rows moved.
func (t *Table) fixStatBounds() {
	for i := range t.stats.attrs {
		a := &t.stats.attrs[i]
		if !a.boundsDirty {
			continue
		}
		a.min, a.max = t.cols[i].minMax(t.rows)
		a.boundsDirty = false
	}
}

// Stats returns a snapshot of the table's statistics. A frozen snapshot view
// returns the statistics captured at its freeze point; the live table builds
// them from the incrementally maintained counters (safe under the storage
// contract — writers are exclusive).
func (t *Table) Stats() TableStats {
	if t.statsView != nil {
		return *t.statsView
	}
	out := TableStats{
		Rows:  t.rows,
		Zones: (t.rows + ZoneRows - 1) / ZoneRows,
		Attrs: make([]AttrStats, len(t.stats.attrs)),
	}
	for i := range t.stats.attrs {
		a := &t.stats.attrs[i]
		out.Attrs[i] = AttrStats{
			NonNull:  a.nonNull,
			Distinct: len(a.counts),
			Min:      a.min,
			Max:      a.max,
		}
	}
	return out
}
