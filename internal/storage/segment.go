package storage

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"repro/internal/value"
	"repro/internal/wal"
)

// This file serializes tables as checkpoint segments. A checkpoint file is a
// sequence of CRC-framed records (the same framing as the WAL): a header
// record carrying the schema fingerprint and the WAL sequence floor, then one
// record per table. Column payloads reuse the in-memory encodings: Int/Date
// columns with a live frame-of-reference encoding spill exactly that (one
// varint base per zone plus one byte delta per row), text columns spill their
// dictionary pages (strings once, then per-row codes), floats spill raw bits,
// and bools bit-pack. On load, zone maps, frame-of-reference deltas, indexes,
// and statistics are rebuilt from the vectors — derived state is never
// trusted from disk.

// segmentMagic versions the checkpoint format.
const segmentMagic = "TBSEG1"

// SchemaFingerprint hashes the schema's DDL rendering; a checkpoint written
// under a different schema refuses to load instead of misinterpreting
// vectors.
func SchemaFingerprint(db *Database) uint64 {
	h := fnv.New64a()
	h.Write([]byte(db.schema.String()))
	return h.Sum64()
}

// writeCheckpointTables serializes the given tables into w: header record
// first, then one record per table in sorted name order. lastSeq is the WAL
// sequence floor — recovery skips WAL records at or below it, which makes the
// checkpoint-then-truncate sequence crash-safe at every intermediate point.
// Checkpoints pass a pinned snapshot's frozen tables, so serialization runs
// without db.mu and never blocks readers or writers; the caller guarantees
// the floor and the table set describe the same committed prefix.
func (db *Database) writeCheckpointTables(w *wal.Writer, tables map[string]*Table, lastSeq uint64) error {
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name)
	}
	sort.Strings(names)

	var buf []byte
	buf = append(buf, segmentMagic...)
	buf = appendUvarint(buf, SchemaFingerprint(db))
	buf = appendUvarint(buf, lastSeq)
	buf = appendUvarint(buf, uint64(len(names)))
	if err := w.Append(buf); err != nil {
		return err
	}
	for _, name := range names {
		tbl := tables[name]
		buf = tbl.appendSegment(buf[:0])
		if err := w.Append(buf); err != nil {
			return fmt.Errorf("storage: checkpointing %s: %w", tbl.rel.Name, err)
		}
	}
	return nil
}

// appendSegment serializes one table into buf.
func (t *Table) appendSegment(buf []byte) []byte {
	buf = appendString(buf, t.rel.Name)
	buf = appendUvarint(buf, uint64(t.rows))
	buf = appendUvarint(buf, uint64(len(t.cols)))
	for i := range t.cols {
		buf = t.cols[i].appendSegment(buf, t.rows)
	}
	infos := t.IndexInfos()
	buf = appendUvarint(buf, uint64(len(infos)))
	for _, info := range infos {
		buf = appendString(buf, info.Name)
		buf = appendUvarint(buf, uint64(len(info.Attrs)))
		for _, a := range info.Attrs {
			buf = appendString(buf, a)
		}
	}
	return buf
}

// Column payload encodings within a segment.
const (
	colEncRaw = 0 // typed values, varint/raw
	colEncFOR = 1 // Int/Date frame-of-reference: zone bases + byte deltas
)

func (c *column) appendSegment(buf []byte, rows int) []byte {
	buf = append(buf, byte(c.kind))
	ranked := byte(0)
	if c.kind == value.Text && c.dict.ranked {
		ranked = 1
	}
	buf = append(buf, ranked)
	// Null bitmap: word count, then raw words. A frozen column keeps its
	// masked boundary bits in a private tail word; emit it as one more word —
	// exactly the live representation the decoder rebuilds.
	words := uint64(len(c.nulls.words))
	if c.nulls.tail != 0 {
		words++
	}
	buf = appendUvarint(buf, words)
	for _, w := range c.nulls.words {
		buf = appendUvarint(buf, w)
	}
	if c.nulls.tail != 0 {
		buf = appendUvarint(buf, c.nulls.tail)
	}
	switch c.kind {
	case value.Int, value.Date:
		if !c.forOff && c.d8Rows() == rows && c.zrows == rows && rows > 0 {
			// Frame-of-reference page: the PR-6 in-memory encoding is the
			// on-disk format — one base per zone, one byte per row (the
			// per-zone delta chunks concatenate back into the flat page).
			buf = append(buf, colEncFOR)
			buf = appendUvarint(buf, uint64(len(c.fb)))
			for _, b := range c.fb {
				buf = appendVarint(buf, b)
			}
			for _, ch := range c.d8 {
				buf = append(buf, ch...)
			}
		} else {
			buf = append(buf, colEncRaw)
			for _, x := range c.ints[:rows] {
				buf = appendVarint(buf, x)
			}
		}
	case value.Float:
		buf = append(buf, colEncRaw)
		for _, f := range c.flts[:rows] {
			var b [8]byte
			byteOrderPutFloat(b[:], f)
			buf = append(buf, b[:]...)
		}
	case value.Text:
		buf = append(buf, colEncRaw)
		// Dictionary pages: the full vocabulary (codes index it, so dead
		// entries ride along until the next compaction), then per-row codes.
		buf = appendUvarint(buf, uint64(len(c.dict.strs)))
		for _, s := range c.dict.strs {
			buf = appendString(buf, s)
		}
		for _, code := range c.codes[:rows] {
			buf = appendUvarint(buf, uint64(code))
		}
	case value.Bool:
		buf = append(buf, colEncRaw)
		packed := make([]byte, (rows+7)/8)
		for i, b := range c.bls[:rows] {
			if b {
				packed[i>>3] |= 1 << (uint(i) & 7)
			}
		}
		buf = append(buf, packed...)
	}
	return buf
}

func byteOrderPutFloat(b []byte, f float64) {
	bits := math.Float64bits(f)
	for i := 0; i < 8; i++ {
		b[i] = byte(bits >> (8 * i))
	}
}

// loadCheckpoint deserializes a checkpoint into db, whose tables must be
// empty. It returns the WAL sequence floor recorded at checkpoint time.
// Every structural mismatch is an error, never a panic — corrupt checkpoints
// degrade into a clean refusal.
func (db *Database) loadCheckpoint(data []byte) (lastSeq uint64, err error) {
	records, tail := wal.Scan(data)
	if tail != nil {
		return 0, fmt.Errorf("storage: corrupt checkpoint: %s at byte %d", tail.Reason, tail.Off)
	}
	if len(records) == 0 {
		return 0, fmt.Errorf("storage: empty checkpoint")
	}
	hd := &walDecoder{buf: records[0].Payload}
	magic := make([]byte, len(segmentMagic))
	for i := range magic {
		magic[i] = hd.byte()
	}
	if hd.err != nil || string(magic) != segmentMagic {
		return 0, fmt.Errorf("storage: checkpoint header is not %q", segmentMagic)
	}
	fingerprint := hd.uvarint()
	lastSeq = hd.uvarint()
	tableCount := hd.uvarint()
	if hd.err != nil {
		return 0, hd.err
	}
	if fingerprint != SchemaFingerprint(db) {
		return 0, fmt.Errorf("storage: checkpoint was written under a different schema (fingerprint %x, want %x)", fingerprint, SchemaFingerprint(db))
	}
	if tableCount != uint64(len(records)-1) {
		return 0, fmt.Errorf("storage: checkpoint header promises %d tables, file holds %d", tableCount, len(records)-1)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, rec := range records[1:] {
		if err := db.loadSegment(rec.Payload); err != nil {
			return 0, err
		}
	}
	return lastSeq, nil
}

func (db *Database) loadSegment(payload []byte) error {
	d := &walDecoder{buf: payload}
	name := d.string()
	rows := d.uvarint()
	colCount := d.uvarint()
	if d.err != nil {
		return d.err
	}
	tbl := db.tables[strings.ToLower(name)]
	if tbl == nil {
		return fmt.Errorf("storage: checkpoint holds unknown relation %q", name)
	}
	if tbl.rows != 0 {
		return fmt.Errorf("storage: loading checkpoint into non-empty table %s", name)
	}
	if colCount != uint64(len(tbl.cols)) {
		return fmt.Errorf("storage: checkpoint %s has %d columns, schema wants %d", name, colCount, len(tbl.cols))
	}
	if rows > uint64(len(payload)) {
		return fmt.Errorf("storage: checkpoint %s row count %d exceeds segment", name, rows)
	}
	n := int(rows)
	for i := range tbl.cols {
		if err := tbl.cols[i].loadSegment(d, n); err != nil {
			return fmt.Errorf("storage: checkpoint %s.%s: %w", name, tbl.rel.Attributes[i].Name, err)
		}
	}
	tbl.rows = n

	// Secondary index definitions; the structures rebuild below.
	idxCount := d.uvarint()
	if d.err != nil {
		return d.err
	}
	if idxCount > uint64(len(payload)) {
		return fmt.Errorf("storage: checkpoint %s index count %d exceeds segment", name, idxCount)
	}
	type idxDef struct {
		name  string
		attrs []string
	}
	defs := make([]idxDef, idxCount)
	for i := range defs {
		defs[i].name = d.string()
		nAttrs := d.uvarint()
		if d.err != nil {
			return d.err
		}
		if nAttrs > uint64(len(payload)) {
			return fmt.Errorf("storage: checkpoint %s index attr count exceeds segment", name)
		}
		defs[i].attrs = make([]string, nAttrs)
		for j := range defs[i].attrs {
			defs[i].attrs[j] = d.string()
		}
	}
	if d.err != nil {
		return d.err
	}

	// Rebuild every piece of derived state from the loaded vectors: zones
	// (and frame-of-reference deltas), primary key, secondary indexes, and
	// statistics.
	for i := range tbl.cols {
		tbl.cols[i].rebuildZonesFrom(0, n)
	}
	tbl.rebuildIndexes()
	for _, def := range defs {
		if err := tbl.CreateIndex(def.name, def.attrs...); err != nil {
			return fmt.Errorf("storage: checkpoint %s: %w", name, err)
		}
	}
	scratch := make(Tuple, len(tbl.cols))
	for i := 0; i < n; i++ {
		tbl.CopyRow(scratch, i)
		tbl.stats.add(scratch, &tbl.keyBuf)
	}
	tbl.invalidate()
	return nil
}

func (c *column) loadSegment(d *walDecoder, rows int) error {
	kind := value.Kind(d.byte())
	ranked := d.byte()
	if d.err != nil {
		return d.err
	}
	if kind != c.kind {
		return fmt.Errorf("segment kind %s, column is %s", kind, c.kind)
	}
	words := d.uvarint()
	if d.err != nil {
		return d.err
	}
	if words > uint64(rows/64+1) {
		return fmt.Errorf("null bitmap of %d words for %d rows", words, rows)
	}
	c.nulls.words = make([]uint64, words)
	for i := range c.nulls.words {
		c.nulls.words[i] = d.uvarint()
	}
	enc := d.byte()
	if d.err != nil {
		return d.err
	}
	switch c.kind {
	case value.Int, value.Date:
		c.ints = make([]int64, rows)
		switch enc {
		case colEncFOR:
			zones := d.uvarint()
			if d.err != nil {
				return d.err
			}
			if zones != uint64((rows+ZoneRows-1)/ZoneRows) {
				return fmt.Errorf("frame-of-reference page has %d zones for %d rows", zones, rows)
			}
			bases := make([]int64, zones)
			for i := range bases {
				bases[i] = d.varint()
			}
			for i := 0; i < rows; i++ {
				delta := d.byte()
				c.ints[i] = bases[i>>ZoneShift] + int64(delta)
			}
		case colEncRaw:
			for i := range c.ints {
				c.ints[i] = d.varint()
			}
		default:
			return fmt.Errorf("unknown int encoding 0x%02x", enc)
		}
		// NULL positions carry a zero placeholder in memory; normalize the
		// reconstructed vector so a recovered database is bit-identical to
		// one that never crashed.
		for i := 0; i < rows; i++ {
			if c.nulls.get(i) {
				c.ints[i] = 0
			}
		}
	case value.Float:
		if enc != colEncRaw {
			return fmt.Errorf("unknown float encoding 0x%02x", enc)
		}
		c.flts = make([]float64, rows)
		for i := range c.flts {
			c.flts[i] = math.Float64frombits(d.uint64le())
		}
	case value.Text:
		if enc != colEncRaw {
			return fmt.Errorf("unknown text encoding 0x%02x", enc)
		}
		dictLen := d.uvarint()
		if d.err != nil {
			return d.err
		}
		if dictLen > uint64(len(d.buf)) {
			return fmt.Errorf("dictionary of %d entries exceeds segment", dictLen)
		}
		c.dict = newDict()
		c.dict.strs = make([]string, dictLen)
		c.dict.refs = make([]int32, dictLen)
		for i := range c.dict.strs {
			s := d.string()
			c.dict.strs[i] = s
			c.dict.code[s] = uint32(i)
		}
		c.codes = make([]uint32, rows)
		for i := range c.codes {
			code := d.uvarint()
			if code >= dictLen && d.err == nil {
				return fmt.Errorf("code %d outside dictionary of %d", code, dictLen)
			}
			c.codes[i] = uint32(code)
		}
		for i := 0; i < rows; i++ {
			if c.nulls.get(i) {
				c.codes[i] = 0 // placeholder parity with the live write path
			} else {
				c.dict.retain(c.codes[i])
			}
		}
		if ranked == 1 {
			c.dict.ranked = true
			c.dict.rankStale.Store(true)
		}
	case value.Bool:
		if enc != colEncRaw {
			return fmt.Errorf("unknown bool encoding 0x%02x", enc)
		}
		packedLen := (rows + 7) / 8
		if d.off+packedLen > len(d.buf) {
			return fmt.Errorf("truncated bool page")
		}
		packed := d.buf[d.off : d.off+packedLen]
		d.off += packedLen
		c.bls = make([]bool, rows)
		for i := range c.bls {
			c.bls[i] = packed[i>>3]&(1<<(uint(i)&7)) != 0
		}
	}
	return d.err
}
