package storage

import (
	"errors"
	"fmt"

	"repro/internal/wal"
)

// This file is the storage half of WAL-shipping replication (internal/repl):
// a primary exposes its committed record stream (a commit sink for the live
// tail plus a checkpoint-aware backlog read for catch-up), and a follower
// applies shipped records through the same record-atomic replay path recovery
// uses, publishing one MVCC version per record at the record's sequence.
//
// The WAL itself is the replication outbox: the sink only has to cover the
// live tail, because any follower that falls behind can always be re-fed from
// the checkpoint segment plus the log — both already durable, both already
// crash-consistent. That is what lets the primary ship asynchronously with a
// bounded in-memory buffer and never stall a commit on a wedged follower.

// ErrReadOnlyReplica reports a local mutation attempted on a database that
// serves as a replication follower: its contents are owned by the primary's
// record stream, so the only writes allowed are replicated applies.
var ErrReadOnlyReplica = errors.New("storage: database is a read-only replication follower; execute writes on the primary")

// CommitFrame is one committed WAL record payload tagged with its sequence,
// exactly as framed on disk (uvarint seq, uvarint op count, encoded ops).
type CommitFrame struct {
	Seq    uint64
	Record []byte
}

// RecordSeq decodes the commit sequence from an encoded WAL record payload.
func RecordSeq(payload []byte) (uint64, bool) {
	d := &walDecoder{buf: payload}
	seq := d.uvarint()
	return seq, d.err == nil
}

// SetCommitSink registers fn to observe every committed record, called after
// the record is fsynced and its version installed, in commit order, with the
// durability mutex held. The record bytes are reused by the next commit: fn
// must copy what it keeps, and must not block — it runs inside the commit
// path of every write.
func (db *Database) SetCommitSink(fn func(seq uint64, record []byte)) error {
	d := db.dur
	if d == nil {
		return errors.New("storage: commit sink requires a durable database")
	}
	d.mu.Lock()
	d.sink = fn
	d.mu.Unlock()
	return nil
}

// ReplicationBacklog returns the committed records a follower at fromSeq is
// missing. When fromSeq is at or above the checkpoint floor, checkpoint is
// nil and frames holds the log records above fromSeq. When the log has been
// truncated past fromSeq, checkpoint holds the raw checkpoint segment (which
// re-seeds the follower at the floor) and frames holds everything above the
// floor. last is the highest committed sequence the backlog reaches.
//
// The read runs under the durability mutex, so it is consistent with commits
// and checkpoint rotation: no record can land or rotate away mid-read.
func (db *Database) ReplicationBacklog(fromSeq uint64) (checkpoint []byte, frames []CommitFrame, last uint64, err error) {
	d := db.dur
	if d == nil {
		return nil, nil, 0, errors.New("storage: replication backlog requires a durable database")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	floor := d.floor.Load()
	if fromSeq < floor {
		checkpoint, err = wal.ReadAll(d.fs, CheckpointFileName)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("storage: reading checkpoint for backlog: %w", err)
		}
		fromSeq = floor
	}
	data, err := wal.ReadAll(d.fs, WALFileName)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("storage: reading log for backlog: %w", err)
	}
	// Scan's valid prefix is exactly the acknowledged records; a torn tail
	// (a latched failed append) was never acknowledged and must not ship.
	records, _ := wal.Scan(data)
	last = fromSeq
	for _, rec := range records {
		seq, ok := RecordSeq(rec.Payload)
		if !ok {
			return nil, nil, 0, fmt.Errorf("storage: log record at byte %d has no sequence", rec.Off)
		}
		if seq <= fromSeq {
			continue
		}
		frames = append(frames, CommitFrame{Seq: seq, Record: append([]byte(nil), rec.Payload...)})
		if seq > last {
			last = seq
		}
	}
	return checkpoint, frames, last, nil
}

// ApplyReplicatedRecord applies one shipped WAL record to a follower
// database: the ops replay through the ordinary DML paths with per-op
// publishes suppressed, then one version installs at the record's sequence —
// so snapshot readers see record atomicity, exactly as they do on the
// primary. The caller owns continuity (a sequence gap is divergence, not
// this function's concern). On an apply error the live tables may hold a
// partial record, but no version is published: the caller must latch and
// stop applying, which keeps every readable snapshot record-atomic.
func (db *Database) ApplyReplicatedRecord(record []byte) (seq uint64, ops int, err error) {
	if db.dur != nil {
		return 0, 0, errors.New("storage: replicated records apply to in-memory followers only")
	}
	d := &walDecoder{buf: record}
	seq = d.uvarint()
	if d.err != nil {
		return 0, 0, fmt.Errorf("storage: replicated record has no sequence: %w", d.err)
	}
	db.recovering.Store(true)
	ops, err = db.replayBatch(d)
	db.recovering.Store(false)
	if err != nil {
		return seq, ops, err
	}
	db.mu.Lock()
	db.publishLocked(seq)
	db.mu.Unlock()
	return seq, ops, nil
}

// LoadReplicatedCheckpoint re-seeds a follower from a primary's raw
// checkpoint segment: the follower's tables are rebuilt empty, the segment
// loads (refusing schema or checksum mismatches), and one version publishes
// at the checkpoint's sequence floor. It returns that floor and the row
// count restored. Readers keep the previous version until the publish, so
// the swap is atomic from their side.
func (db *Database) LoadReplicatedCheckpoint(checkpoint []byte) (floor uint64, rows int, err error) {
	if db.dur != nil {
		return 0, 0, errors.New("storage: replicated checkpoints load into in-memory followers only")
	}
	fresh, err := NewDatabase(db.schema)
	if err != nil {
		return 0, 0, err
	}
	db.mu.Lock()
	db.tables = fresh.tables
	for _, t := range db.tables {
		t.owner = db
	}
	db.mu.Unlock()
	floor, err = db.loadCheckpoint(checkpoint)
	if err != nil {
		return 0, 0, err
	}
	db.mu.Lock()
	for _, t := range db.tables {
		t.dirty = true
	}
	db.publishLocked(floor)
	db.mu.Unlock()
	return floor, db.totalRows(), nil
}

// CheckpointFloor parses the WAL sequence floor out of a raw checkpoint
// segment without loading it — a follower peeks at an offered checkpoint to
// detect divergence (a floor behind its own state) before wiping anything.
func CheckpointFloor(checkpoint []byte) (uint64, error) {
	records, _ := wal.Scan(checkpoint)
	if len(records) == 0 {
		return 0, errors.New("storage: checkpoint has no header record")
	}
	d := &walDecoder{buf: records[0].Payload}
	for range segmentMagic {
		d.byte()
	}
	d.uvarint() // schema fingerprint; LoadReplicatedCheckpoint verifies it
	floor := d.uvarint()
	if d.err != nil {
		return 0, fmt.Errorf("storage: checkpoint header: %w", d.err)
	}
	return floor, nil
}

// SetReadOnly marks the database a replication follower: every local
// mutation is refused with ErrReadOnlyReplica. Replicated applies still run —
// they replay under the recovery flag, which bypasses the refusal the same
// way WAL replay does.
func (db *Database) SetReadOnly(ro bool) { db.readOnly.Store(ro) }
