package storage

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/value"
)

// testSchema is a two-relation schema with a foreign key, enough to exercise
// all constraint paths.
func testSchema(t *testing.T) *catalog.Schema {
	t.Helper()
	s := catalog.NewSchema("test")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.AddRelation(&catalog.Relation{
		Name: "DIRECTOR",
		Attributes: []*catalog.Attribute{
			{Name: "id", Type: catalog.Int, NotNull: true},
			{Name: "name", Type: catalog.Text, NotNull: true},
			{Name: "bdate", Type: catalog.Date},
		},
		PrimaryKey:  []string{"id"},
		HeadingAttr: "name",
	}))
	must(s.AddRelation(&catalog.Relation{
		Name: "MOVIES",
		Attributes: []*catalog.Attribute{
			{Name: "id", Type: catalog.Int, NotNull: true},
			{Name: "title", Type: catalog.Text},
			{Name: "year", Type: catalog.Int},
			{Name: "did", Type: catalog.Int},
		},
		PrimaryKey: []string{"id"},
		ForeignKey: []catalog.ForeignKey{
			{Attrs: []string{"did"}, RefRelation: "DIRECTOR", RefAttrs: []string{"id"}},
		},
	}))
	return s
}

func newDB(t *testing.T) *Database {
	t.Helper()
	db, err := NewDatabase(testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func ins(t *testing.T, db *Database, rel string, vals ...value.Value) {
	t.Helper()
	if err := db.Insert(rel, Tuple(vals)); err != nil {
		t.Fatalf("Insert %s: %v", rel, err)
	}
}

func TestInsertAndScan(t *testing.T) {
	db := newDB(t)
	ins(t, db, "DIRECTOR", value.NewInt(1), value.NewText("Woody Allen"), value.NewNull())
	ins(t, db, "MOVIES", value.NewInt(10), value.NewText("Match Point"), value.NewInt(2005), value.NewInt(1))
	tbl := db.Table("movies")
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	got := tbl.Tuple(0)
	if got[1].Text() != "Match Point" || got[2].Int() != 2005 {
		t.Errorf("tuple = %v", got)
	}
	count := 0
	tbl.Scan(func(Tuple) bool { count++; return true })
	if count != 1 {
		t.Errorf("Scan visited %d", count)
	}
}

func TestInsertArityAndTypeErrors(t *testing.T) {
	db := newDB(t)
	if err := db.Insert("DIRECTOR", Tuple{value.NewInt(1)}); err == nil {
		t.Error("arity violation accepted")
	}
	if err := db.Insert("NOPE", Tuple{}); err == nil {
		t.Error("unknown relation accepted")
	}
	// Bool cannot coerce to TEXT.
	if err := db.Insert("DIRECTOR", Tuple{value.NewInt(1), value.NewBool(true), value.NewNull()}); err == nil {
		t.Error("type violation accepted")
	}
	// Text "1935-12-01" coerces to DATE.
	if err := db.Insert("DIRECTOR", Tuple{value.NewInt(1), value.NewText("X"), value.NewText("1935-12-01")}); err != nil {
		t.Errorf("date coercion failed: %v", err)
	}
	if d := db.Table("DIRECTOR").Tuple(0)[2]; d.Kind() != value.Date {
		t.Errorf("stored kind = %v", d.Kind())
	}
}

func TestNotNull(t *testing.T) {
	db := newDB(t)
	if err := db.Insert("DIRECTOR", Tuple{value.NewInt(1), value.NewNull(), value.NewNull()}); err == nil {
		t.Error("NOT NULL violation accepted")
	}
}

func TestPrimaryKeyUniqueness(t *testing.T) {
	db := newDB(t)
	ins(t, db, "DIRECTOR", value.NewInt(1), value.NewText("A"), value.NewNull())
	if err := db.Insert("DIRECTOR", Tuple{value.NewInt(1), value.NewText("B"), value.NewNull()}); err == nil {
		t.Error("duplicate PK accepted")
	}
	// And the failed insert must not corrupt the table.
	if db.Table("DIRECTOR").Len() != 1 {
		t.Error("failed insert changed table")
	}
	tup, ok := db.Table("DIRECTOR").LookupPK(Tuple{value.NewInt(1)})
	if !ok || tup[1].Text() != "A" {
		t.Errorf("LookupPK = %v, %v", tup, ok)
	}
	if _, ok := db.Table("DIRECTOR").LookupPK(Tuple{value.NewInt(9)}); ok {
		t.Error("LookupPK found ghost")
	}
}

func TestForeignKey(t *testing.T) {
	db := newDB(t)
	if err := db.Insert("MOVIES", Tuple{value.NewInt(1), value.NewText("T"), value.NewInt(2000), value.NewInt(7)}); err == nil {
		t.Error("FK violation accepted")
	}
	ins(t, db, "DIRECTOR", value.NewInt(7), value.NewText("D"), value.NewNull())
	ins(t, db, "MOVIES", value.NewInt(1), value.NewText("T"), value.NewInt(2000), value.NewInt(7))
	// NULL FK is allowed.
	ins(t, db, "MOVIES", value.NewInt(2), value.NewText("U"), value.NewInt(2001), value.NewNull())
	// A failed FK insert must not leave a phantom PK entry.
	if err := db.Insert("MOVIES", Tuple{value.NewInt(3), value.NewText("V"), value.NewInt(2002), value.NewInt(99)}); err == nil {
		t.Fatal("FK violation accepted")
	}
	if err := db.Insert("MOVIES", Tuple{value.NewInt(3), value.NewText("V"), value.NewInt(2002), value.NewInt(7)}); err != nil {
		t.Errorf("reinsert after failed FK: %v", err)
	}
}

func TestSecondaryIndex(t *testing.T) {
	db := newDB(t)
	ins(t, db, "DIRECTOR", value.NewInt(1), value.NewText("A"), value.NewNull())
	tbl := db.Table("MOVIES")
	if err := tbl.CreateIndex("by_year", "year"); err != nil {
		t.Fatal(err)
	}
	ins(t, db, "MOVIES", value.NewInt(1), value.NewText("T1"), value.NewInt(2005), value.NewInt(1))
	ins(t, db, "MOVIES", value.NewInt(2), value.NewText("T2"), value.NewInt(2005), value.NewInt(1))
	ins(t, db, "MOVIES", value.NewInt(3), value.NewText("T3"), value.NewInt(2004), value.NewInt(1))
	got, err := tbl.LookupIndex("by_year", value.NewInt(2005))
	if err != nil || len(got) != 2 {
		t.Fatalf("LookupIndex = %v, %v", got, err)
	}
	if _, err := tbl.LookupIndex("nope", value.NewInt(1)); err == nil {
		t.Error("unknown index accepted")
	}
	if _, err := tbl.LookupIndex("by_year"); err == nil {
		t.Error("wrong key arity accepted")
	}
	if err := tbl.CreateIndex("by_year", "year"); err == nil {
		t.Error("duplicate index accepted")
	}
	if err := tbl.CreateIndex("bad", "nope"); err == nil {
		t.Error("index on unknown attribute accepted")
	}
}

func TestIndexBuiltOverExistingTuples(t *testing.T) {
	db := newDB(t)
	ins(t, db, "DIRECTOR", value.NewInt(1), value.NewText("A"), value.NewNull())
	ins(t, db, "MOVIES", value.NewInt(1), value.NewText("T1"), value.NewInt(1999), value.NewInt(1))
	tbl := db.Table("MOVIES")
	if err := tbl.CreateIndex("by_year", "year"); err != nil {
		t.Fatal(err)
	}
	got, _ := tbl.LookupIndex("by_year", value.NewInt(1999))
	if len(got) != 1 {
		t.Errorf("index missed pre-existing tuple: %v", got)
	}
}

func TestDelete(t *testing.T) {
	db := newDB(t)
	ins(t, db, "DIRECTOR", value.NewInt(1), value.NewText("A"), value.NewNull())
	ins(t, db, "DIRECTOR", value.NewInt(2), value.NewText("B"), value.NewNull())
	n, err := db.Delete("DIRECTOR", func(tup Tuple) bool { return tup[0].Int() == 1 })
	if err != nil || n != 1 {
		t.Fatalf("Delete = %d, %v", n, err)
	}
	if db.Table("DIRECTOR").Len() != 1 {
		t.Error("tuple not removed")
	}
	// PK index must be rebuilt: reinserting id=1 succeeds; id=2 still blocked.
	if err := db.Insert("DIRECTOR", Tuple{value.NewInt(1), value.NewText("C"), value.NewNull()}); err != nil {
		t.Errorf("reinsert after delete: %v", err)
	}
	if err := db.Insert("DIRECTOR", Tuple{value.NewInt(2), value.NewText("D"), value.NewNull()}); err == nil {
		t.Error("duplicate PK after rebuild accepted")
	}
	if _, err := db.Delete("NOPE", func(Tuple) bool { return true }); err == nil {
		t.Error("Delete on unknown relation accepted")
	}
}

func TestUpdate(t *testing.T) {
	db := newDB(t)
	ins(t, db, "DIRECTOR", value.NewInt(1), value.NewText("A"), value.NewNull())
	n, err := db.Update("DIRECTOR",
		func(tup Tuple) bool { return tup[0].Int() == 1 },
		func(tup Tuple) Tuple { tup[1] = value.NewText("A2"); return tup })
	if err != nil || n != 1 {
		t.Fatalf("Update = %d, %v", n, err)
	}
	if got := db.Table("DIRECTOR").Tuple(0)[1].Text(); got != "A2" {
		t.Errorf("updated value = %q", got)
	}
	// NOT NULL enforced on update.
	_, err = db.Update("DIRECTOR",
		func(Tuple) bool { return true },
		func(tup Tuple) Tuple { tup[1] = value.NewNull(); return tup })
	if err == nil {
		t.Error("NOT NULL update accepted")
	}
	if _, err := db.Update("NOPE", nil, nil); err == nil {
		t.Error("Update on unknown relation accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := newDB(t)
	csvIn := "id,name,bdate\n1,Woody Allen,1935-12-01\n2,G. Loucas,\n"
	n, err := db.LoadCSV("DIRECTOR", strings.NewReader(csvIn))
	if err != nil || n != 2 {
		t.Fatalf("LoadCSV = %d, %v", n, err)
	}
	if d := db.Table("DIRECTOR").Tuple(0)[2]; d.Kind() != value.Date {
		t.Errorf("bdate kind = %v", d.Kind())
	}
	if !db.Table("DIRECTOR").Tuple(1)[2].IsNull() {
		t.Error("empty cell should be NULL")
	}
	var out bytes.Buffer
	if err := db.DumpCSV("DIRECTOR", &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Woody Allen") || !strings.Contains(out.String(), "1935-12-01") {
		t.Errorf("DumpCSV output:\n%s", out.String())
	}
	// Reload the dump into a fresh DB.
	db2 := newDB(t)
	if _, err := db2.LoadCSV("DIRECTOR", bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("reload: %v", err)
	}
	if db2.Table("DIRECTOR").Len() != 2 {
		t.Error("round trip lost tuples")
	}
}

func TestCSVErrors(t *testing.T) {
	db := newDB(t)
	if _, err := db.LoadCSV("NOPE", strings.NewReader("x\n")); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := db.LoadCSV("DIRECTOR", strings.NewReader("id,bogus\n1,2\n")); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := db.LoadCSV("DIRECTOR", strings.NewReader("id,name\nxyz,A\n")); err == nil {
		t.Error("bad int accepted")
	}
	if err := db.DumpCSV("NOPE", &bytes.Buffer{}); err == nil {
		t.Error("dump of unknown relation accepted")
	}
}

func TestStatsAndDistinct(t *testing.T) {
	db := newDB(t)
	ins(t, db, "DIRECTOR", value.NewInt(1), value.NewText("A"), value.NewNull())
	ins(t, db, "DIRECTOR", value.NewInt(2), value.NewText("A"), value.NewNull())
	stats := db.Stats()
	if stats["DIRECTOR"] != 2 || stats["MOVIES"] != 0 {
		t.Errorf("Stats = %v", stats)
	}
	n, err := db.DistinctCount("DIRECTOR", "name")
	if err != nil || n != 1 {
		t.Errorf("DistinctCount(name) = %d, %v", n, err)
	}
	n, err = db.DistinctCount("DIRECTOR", "bdate")
	if err != nil || n != 0 {
		t.Errorf("DistinctCount(all-null) = %d, %v", n, err)
	}
	if _, err := db.DistinctCount("DIRECTOR", "nope"); err == nil {
		t.Error("DistinctCount unknown attr accepted")
	}
	if _, err := db.DistinctCount("NOPE", "x"); err == nil {
		t.Error("DistinctCount unknown rel accepted")
	}
}

func TestTupleCloneAndString(t *testing.T) {
	tup := Tuple{value.NewInt(1), value.NewText("x")}
	c := tup.Clone()
	c[0] = value.NewInt(9)
	if tup[0].Int() != 1 {
		t.Error("Clone shares storage")
	}
	if s := tup.String(); s != "(1, x)" {
		t.Errorf("Tuple.String = %q", s)
	}
}

func TestTableNames(t *testing.T) {
	db := newDB(t)
	names := db.TableNames()
	if len(names) != 2 || names[0] != "DIRECTOR" || names[1] != "MOVIES" {
		t.Errorf("TableNames = %v", names)
	}
}

// Property: after inserting n distinct-keyed tuples, Len == n and every key
// is findable via LookupPK.
func TestInsertLookupProperty(t *testing.T) {
	f := func(keys []int16) bool {
		db, err := NewDatabase(func() *catalog.Schema {
			s := catalog.NewSchema("p")
			_ = s.AddRelation(&catalog.Relation{
				Name: "T",
				Attributes: []*catalog.Attribute{
					{Name: "k", Type: catalog.Int, NotNull: true},
					{Name: "v", Type: catalog.Int},
				},
				PrimaryKey: []string{"k"},
			})
			return s
		}())
		if err != nil {
			return false
		}
		seen := map[int16]bool{}
		inserted := 0
		for _, k := range keys {
			err := db.Insert("T", Tuple{value.NewInt(int64(k)), value.NewInt(0)})
			if seen[k] {
				if err == nil {
					return false // duplicate must fail
				}
			} else {
				if err != nil {
					return false
				}
				seen[k] = true
				inserted++
			}
		}
		if db.Table("T").Len() != inserted {
			return false
		}
		for k := range seen {
			if _, ok := db.Table("T").LookupPK(Tuple{value.NewInt(int64(k))}); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: secondary index lookups agree with a full scan.
func TestIndexScanAgreementProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		s := catalog.NewSchema("p")
		_ = s.AddRelation(&catalog.Relation{
			Name: "T",
			Attributes: []*catalog.Attribute{
				{Name: "k", Type: catalog.Int, NotNull: true},
				{Name: "g", Type: catalog.Int},
			},
			PrimaryKey: []string{"k"},
		})
		db, _ := NewDatabase(s)
		tbl := db.Table("T")
		_ = tbl.CreateIndex("by_g", "g")
		for i, v := range vals {
			_ = db.Insert("T", Tuple{value.NewInt(int64(i)), value.NewInt(int64(v % 4))})
		}
		for g := int64(0); g < 4; g++ {
			idx, err := tbl.LookupIndex("by_g", value.NewInt(g))
			if err != nil {
				return false
			}
			scanCount := 0
			tbl.Scan(func(tup Tuple) bool {
				if tup[1].Int() == g {
					scanCount++
				}
				return true
			})
			if len(idx) != scanCount {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	s := catalog.NewSchema("b")
	_ = s.AddRelation(&catalog.Relation{
		Name: "T",
		Attributes: []*catalog.Attribute{
			{Name: "k", Type: catalog.Int, NotNull: true},
			{Name: "v", Type: catalog.Text},
		},
		PrimaryKey: []string{"k"},
	})
	db, _ := NewDatabase(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = db.Insert("T", Tuple{value.NewInt(int64(i)), value.NewText("v")})
	}
}

func BenchmarkLookupPK(b *testing.B) {
	s := catalog.NewSchema("b")
	_ = s.AddRelation(&catalog.Relation{
		Name: "T",
		Attributes: []*catalog.Attribute{
			{Name: "k", Type: catalog.Int, NotNull: true},
		},
		PrimaryKey: []string{"k"},
	})
	db, _ := NewDatabase(s)
	for i := 0; i < 10000; i++ {
		_ = db.Insert("T", Tuple{value.NewInt(int64(i))})
	}
	tbl := db.Table("T")
	key := Tuple{value.NewInt(5000)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.LookupPK(key)
	}
}
