package storage

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/value"
)

// zoneSchema is one relation with one attribute per kind and no constraints,
// so random insert/delete/update sequences can run unrestricted.
func zoneSchema(t *testing.T) *catalog.Schema {
	t.Helper()
	s := catalog.NewSchema("zones")
	if err := s.AddRelation(&catalog.Relation{
		Name: "Z",
		Attributes: []*catalog.Attribute{
			{Name: "i", Type: catalog.Int},
			{Name: "f", Type: catalog.Float},
			{Name: "s", Type: catalog.Text},
			{Name: "d", Type: catalog.Date},
			{Name: "b", Type: catalog.Bool},
		},
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func newZoneDB(t *testing.T) (*Database, *Table) {
	t.Helper()
	db, err := NewDatabase(zoneSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	return db, db.Table("Z")
}

func randZTuple(rng *rand.Rand) Tuple {
	tup := make(Tuple, 5)
	if rng.Intn(8) == 0 {
		tup[0] = value.NewNull()
	} else {
		tup[0] = value.NewInt(int64(rng.Intn(2000) - 1000))
	}
	switch rng.Intn(12) {
	case 0:
		tup[1] = value.NewNull()
	case 1:
		tup[1] = value.NewFloat(math.NaN())
	case 2:
		tup[1] = value.NewFloat(math.Copysign(0, -1))
	case 3:
		tup[1] = value.NewFloat(0)
	default:
		tup[1] = value.NewFloat(float64(rng.Intn(400)-200) / 4)
	}
	if rng.Intn(8) == 0 {
		tup[2] = value.NewNull()
	} else {
		tup[2] = value.NewText(fmt.Sprintf("w%03d", rng.Intn(300)))
	}
	if rng.Intn(8) == 0 {
		tup[3] = value.NewNull()
	} else {
		tup[3] = value.NewDateDays(int64(rng.Intn(5000) + 10000))
	}
	if rng.Intn(8) == 0 {
		tup[4] = value.NewNull()
	} else {
		tup[4] = value.NewBool(rng.Intn(2) == 0)
	}
	return tup
}

// checkZones verifies every column's zone maps against a brute-force rescan:
// per-zone null counts, typed bounds, NaN flags, the null-count-vs-bitmap
// consistency, and frame-of-reference decode parity.
func checkZones(t *testing.T, tbl *Table) {
	t.Helper()
	n := tbl.Len()
	for p := range tbl.cols {
		col := tbl.Col(p)
		if !col.ZonesSynced(n) {
			t.Fatalf("col %d: zones cover %d rows, table has %d", p, tbl.cols[p].zrows, n)
		}
		wantZones := (n + ZoneRows - 1) / ZoneRows
		if col.ZoneCount() != wantZones {
			t.Fatalf("col %d: %d zones, want %d", p, col.ZoneCount(), wantZones)
		}
		totalNulls := 0
		for z := 0; z < col.ZoneCount(); z++ {
			lo, hi := z*ZoneRows, (z+1)*ZoneRows
			if hi > n {
				hi = n
			}
			nulls := 0
			first := true
			var loI, hiI int64
			var loF, hiF float64
			var loS, hiS string
			hasNaN := false
			for i := lo; i < hi; i++ {
				if col.Null(i) {
					nulls++
					continue
				}
				switch col.Kind() {
				case value.Int, value.Date:
					x := col.Ints()[i]
					if first {
						loI, hiI, first = x, x, false
					} else if x < loI {
						loI = x
					} else if x > hiI {
						hiI = x
					}
				case value.Float:
					x := col.Floats()[i]
					if math.IsNaN(x) {
						hasNaN = true
						continue
					}
					if first {
						loF, hiF, first = x, x, false
					} else if x < loF {
						loF = x
					} else if x > hiF {
						hiF = x
					}
				case value.Text:
					s := col.DictString(col.Codes()[i])
					if first {
						loS, hiS, first = s, s, false
					} else if s < loS {
						loS = s
					} else if s > hiS {
						hiS = s
					}
				case value.Bool:
					var x int64
					if col.Bools()[i] {
						x = 1
					}
					if first {
						loI, hiI, first = x, x, false
					} else if x < loI {
						loI = x
					} else if x > hiI {
						hiI = x
					}
				}
			}
			if got := col.ZoneNulls(z); got != nulls {
				t.Fatalf("col %d zone %d: %d nulls, want %d", p, z, got, nulls)
			}
			totalNulls += nulls
			switch col.Kind() {
			case value.Int, value.Date, value.Bool:
				gl, gh, ok := col.ZoneIntBounds(z)
				if ok == first {
					t.Fatalf("col %d zone %d: bounds ok=%v, want %v", p, z, ok, !first)
				}
				if ok && (gl != loI || gh != hiI) {
					t.Fatalf("col %d zone %d: bounds [%d,%d], want [%d,%d]", p, z, gl, gh, loI, hiI)
				}
			case value.Float:
				gl, gh, ok := col.ZoneFloatBounds(z)
				if ok == first {
					t.Fatalf("col %d zone %d: bounds ok=%v, want %v", p, z, ok, !first)
				}
				if col.ZoneHasNaN(z) != hasNaN {
					t.Fatalf("col %d zone %d: hasNaN=%v, want %v", p, z, col.ZoneHasNaN(z), hasNaN)
				}
				if ok && (gl != loF || gh != hiF) {
					t.Fatalf("col %d zone %d: bounds [%v,%v], want [%v,%v]", p, z, gl, gh, loF, hiF)
				}
			case value.Text:
				gl, gh, ok := col.ZoneTextBounds(z)
				if ok == first {
					t.Fatalf("col %d zone %d: bounds ok=%v, want %v", p, z, ok, !first)
				}
				if ok && (gl != loS || gh != hiS) {
					t.Fatalf("col %d zone %d: bounds [%q,%q], want [%q,%q]", p, z, gl, gh, loS, hiS)
				}
			}
		}
		if got := tbl.cols[p].nulls.count(n); got != totalNulls {
			t.Fatalf("col %d: bitmap counts %d nulls, zones say %d", p, got, totalNulls)
		}
		if base, d8, ok := col.FORInts(); ok {
			for i := 0; i < n; i++ {
				if col.Null(i) {
					continue
				}
				if got := base[i>>ZoneShift] + int64(d8[i>>ZoneShift][i&ZoneMask]); got != col.Ints()[i] {
					t.Fatalf("col %d row %d: FOR decodes %d, payload %d", p, i, got, col.Ints()[i])
				}
			}
		}
	}
}

// checkStats verifies the incrementally maintained statistics against a
// from-scratch rebuild over the live rows: exact non-null and distinct
// counts, and min/max bounds over the comparable values (NaN excluded, -0.0
// equal to +0.0).
func checkStats(t *testing.T, tbl *Table) {
	t.Helper()
	got := tbl.Stats()
	if got.Rows != tbl.Len() {
		t.Fatalf("stats rows %d, want %d", got.Rows, tbl.Len())
	}
	if want := (tbl.Len() + ZoneRows - 1) / ZoneRows; got.Zones != want {
		t.Fatalf("stats zones %d, want %d", got.Zones, want)
	}
	var buf []byte
	for p := range tbl.cols {
		col := tbl.Col(p)
		nonNull := 0
		distinct := map[string]bool{}
		min, max := value.NewNull(), value.NewNull()
		for i := 0; i < tbl.Len(); i++ {
			if col.Null(i) {
				continue
			}
			v := col.Value(i)
			nonNull++
			buf = v.AppendKey(buf[:0])
			distinct[string(buf)] = true
			if isNaN(v) {
				continue
			}
			if min.IsNull() {
				min, max = v, v
				continue
			}
			if c, err := v.Compare(min); err != nil {
				t.Fatal(err)
			} else if c < 0 {
				min = v
			}
			if c, err := v.Compare(max); err != nil {
				t.Fatal(err)
			} else if c > 0 {
				max = v
			}
		}
		a := got.Attrs[p]
		if a.NonNull != nonNull {
			t.Fatalf("attr %d: NonNull %d, want %d", p, a.NonNull, nonNull)
		}
		if a.Distinct != len(distinct) {
			t.Fatalf("attr %d: Distinct %d, want %d", p, a.Distinct, len(distinct))
		}
		if a.Min.IsNull() != min.IsNull() || (!min.IsNull() && !a.Min.Equal(min)) {
			t.Fatalf("attr %d: Min %v, want %v", p, a.Min, min)
		}
		if a.Max.IsNull() != max.IsNull() || (!max.IsNull() && !a.Max.Equal(max)) {
			t.Fatalf("attr %d: Max %v, want %v", p, a.Max, max)
		}
	}
}

// TestZoneMapsRandomOps drives random insert/delete/update sequences across
// every column kind (with NULLs, NaN, and -0.0 in the mix) and checks zone
// maps, frame-of-reference parity, and statistics against brute force after
// every write batch.
func TestZoneMapsRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db, tbl := newZoneDB(t)
	insertN := func(n int) {
		t.Helper()
		for k := 0; k < n; k++ {
			if err := db.Insert("Z", randZTuple(rng)); err != nil {
				t.Fatal(err)
			}
		}
	}
	insertN(2*ZoneRows + 500)
	checkZones(t, tbl)
	checkStats(t, tbl)
	for round := 0; round < 4; round++ {
		m := int64(rng.Intn(5) + 3)
		r := rng.Int63n(m)
		if _, err := db.Delete("Z", func(tup Tuple) bool {
			return !tup[0].IsNull() && ((tup[0].Int()%m)+m)%m == r
		}); err != nil {
			t.Fatal(err)
		}
		checkZones(t, tbl)
		checkStats(t, tbl)
		if _, err := db.Update("Z", func(tup Tuple) bool {
			return !tup[4].IsNull() && tup[4].Bool()
		}, func(tup Tuple) Tuple {
			repl := tup.Clone()
			repl[1] = randZTuple(rng)[1]
			repl[2] = randZTuple(rng)[2]
			return repl
		}); err != nil {
			t.Fatal(err)
		}
		checkZones(t, tbl)
		checkStats(t, tbl)
		insertN(700)
		checkZones(t, tbl)
		checkStats(t, tbl)
	}
}

// TestStatsNaNBounds pins the stats fix: NaN is excluded from min/max (it is
// incomparable), so a NaN arriving first no longer poisons the bounds, and
// removing it leaves them intact.
func TestStatsNaNBounds(t *testing.T) {
	db, tbl := newZoneDB(t)
	nan := Tuple{value.NewNull(), value.NewFloat(math.NaN()), value.NewNull(), value.NewNull(), value.NewNull()}
	five := Tuple{value.NewInt(1), value.NewFloat(5), value.NewNull(), value.NewNull(), value.NewNull()}
	for _, tup := range []Tuple{nan.Clone(), five.Clone()} {
		if err := db.Insert("Z", tup); err != nil {
			t.Fatal(err)
		}
	}
	if a := tbl.Stats().Attrs[1]; !a.Min.Equal(value.NewFloat(5)) || !a.Max.Equal(value.NewFloat(5)) {
		t.Fatalf("bounds with NaN present: [%v,%v], want [5,5]", a.Min, a.Max)
	}
	if _, err := db.Delete("Z", func(tup Tuple) bool { return tup[0].IsNull() }); err != nil {
		t.Fatal(err)
	}
	if a := tbl.Stats().Attrs[1]; !a.Min.Equal(value.NewFloat(5)) || !a.Max.Equal(value.NewFloat(5)) {
		t.Fatalf("bounds after NaN removal: [%v,%v], want [5,5]", a.Min, a.Max)
	}
	// An all-NaN column has no comparable values: NULL bounds.
	if _, err := db.Delete("Z", func(Tuple) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("Z", nan.Clone()); err != nil {
		t.Fatal(err)
	}
	if a := tbl.Stats().Attrs[1]; !a.Min.IsNull() || !a.Max.IsNull() {
		t.Fatalf("all-NaN bounds: [%v,%v], want NULLs", a.Min, a.Max)
	}
}

// TestStatsRemoveRescanTriggers pins exactly which removals mark bounds
// dirty: NULL values and NaN never do (no rescan), a value equal to a bound
// does — including a -0.0 removal against a +0.0 bound.
func TestStatsRemoveRescanTriggers(t *testing.T) {
	rel := zoneSchema(t).Relations()[0]
	mk := func(f value.Value) Tuple {
		return Tuple{value.NewNull(), f, value.NewNull(), value.NewNull(), value.NewNull()}
	}
	var st tableStats
	st.init(rel)
	var buf []byte
	st.add(mk(value.NewFloat(1)), &buf)
	st.add(mk(value.NewFloat(9)), &buf)
	st.add(mk(value.NewFloat(math.NaN())), &buf)
	st.add(mk(value.NewNull()), &buf)

	st.remove(mk(value.NewNull()), &buf)
	if st.attrs[1].boundsDirty {
		t.Fatal("NULL-only removal marked bounds dirty")
	}
	st.remove(mk(value.NewFloat(math.NaN())), &buf)
	if st.attrs[1].boundsDirty {
		t.Fatal("NaN removal marked bounds dirty")
	}
	st.remove(mk(value.NewFloat(5)), &buf)
	if st.attrs[1].boundsDirty {
		t.Fatal("interior removal marked bounds dirty")
	}
	// -0.0 equals +0.0 under value.Equal, so removing it against a +0.0
	// bound must trigger the rescan.
	var st2 tableStats
	st2.init(rel)
	st2.add(mk(value.NewFloat(0)), &buf)
	st2.add(mk(value.NewFloat(9)), &buf)
	st2.remove(mk(value.NewFloat(math.Copysign(0, -1))), &buf)
	if !st2.attrs[1].boundsDirty {
		t.Fatal("-0.0 removal against +0.0 minimum did not mark bounds dirty")
	}
	st2.attrs[1].boundsDirty = false
	st2.remove(mk(value.NewFloat(9)), &buf)
	if !st2.attrs[1].boundsDirty {
		t.Fatal("max removal did not mark bounds dirty")
	}
}

// TestBitmapBoundaries exhaustively exercises set/truncate/get around word
// boundaries (63/64/65 and every other count up to two words plus change): a
// stale bit after truncate would corrupt null counts and zone maps.
func TestBitmapBoundaries(t *testing.T) {
	for n := 0; n <= 130; n++ {
		for trunc := 0; trunc <= n; trunc++ {
			var b bitmap
			for i := 0; i < n; i++ {
				b.set(i, true)
			}
			b.truncate(trunc)
			for i := 0; i < trunc; i++ {
				if !b.get(i) {
					t.Fatalf("n=%d trunc=%d: bit %d lost", n, trunc, i)
				}
			}
			for i := trunc; i <= n+64; i++ {
				if b.get(i) {
					t.Fatalf("n=%d trunc=%d: stale bit %d", n, trunc, i)
				}
			}
			if got := b.count(n + 64); got != trunc {
				t.Fatalf("n=%d trunc=%d: count %d, want %d", n, trunc, got, trunc)
			}
			// Re-grow over the truncated tail: false stores must not
			// resurrect stale words, true stores must land exactly.
			b.set(trunc+2, true)
			for i := trunc; i <= trunc+3; i++ {
				if b.get(i) != (i == trunc+2) {
					t.Fatalf("n=%d trunc=%d: regrow bit %d = %v", n, trunc, i, b.get(i))
				}
			}
		}
	}
	// Alternating patterns across truncate, checked against a model.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		var b bitmap
		model := make([]bool, 140)
		for i := range model {
			model[i] = rng.Intn(2) == 0
			b.set(i, model[i])
		}
		cut := rng.Intn(len(model) + 1)
		b.truncate(cut)
		want := 0
		for i := 0; i < len(model)+64; i++ {
			exp := i < cut && model[i]
			if b.get(i) != exp {
				t.Fatalf("trial %d cut %d: bit %d = %v, want %v", trial, cut, i, b.get(i), exp)
			}
			if exp {
				want++
			}
		}
		if got := b.count(len(model) + 64); got != want {
			t.Fatalf("trial %d cut %d: count %d, want %d", trial, cut, got, want)
		}
	}
}

// TestDictCompactionOnChurn pins the dictionary-churn fix: after updates
// retire most of the vocabulary, the dictionary compacts down to the live
// strings, so DictLen — the bound on every per-entry verdict loop in the
// vectorized engine — shrinks back instead of growing forever.
func TestDictCompactionOnChurn(t *testing.T) {
	db, tbl := newZoneDB(t)
	for i := 0; i < 1000; i++ {
		tup := Tuple{value.NewInt(int64(i)), value.NewNull(), value.NewText(fmt.Sprintf("unique-%04d", i)), value.NewNull(), value.NewNull()}
		if err := db.Insert("Z", tup); err != nil {
			t.Fatal(err)
		}
	}
	col := tbl.Col(2)
	if col.DictLen() != 1000 {
		t.Fatalf("pre-churn DictLen %d, want 1000", col.DictLen())
	}
	if _, err := db.Update("Z", func(Tuple) bool { return true }, func(tup Tuple) Tuple {
		repl := tup.Clone()
		repl[2] = value.NewText(fmt.Sprintf("w%d", tup[0].Int()%8))
		return repl
	}); err != nil {
		t.Fatal(err)
	}
	if col.DictLen() != 8 {
		t.Fatalf("post-churn DictLen %d, want 8 (dict not compacted)", col.DictLen())
	}
	if col.DictLive() != 8 {
		t.Fatalf("post-churn DictLive %d, want 8", col.DictLive())
	}
	// Codes were remapped: every row still reads back its string.
	for i := 0; i < tbl.Len(); i++ {
		want := fmt.Sprintf("w%d", tbl.Col(0).Ints()[i]%8)
		if got := col.Value(i).Text(); got != want {
			t.Fatalf("row %d reads %q after compaction, want %q", i, got, want)
		}
	}
	checkZones(t, tbl)
	checkStats(t, tbl)

	// Delete-driven churn compacts too.
	db2, tbl2 := newZoneDB(t)
	for i := 0; i < 2000; i++ {
		tup := Tuple{value.NewInt(int64(i)), value.NewNull(), value.NewText(fmt.Sprintf("only-%04d", i)), value.NewNull(), value.NewNull()}
		if err := db2.Insert("Z", tup); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db2.Delete("Z", func(tup Tuple) bool { return tup[0].Int() >= 100 }); err != nil {
		t.Fatal(err)
	}
	if col2 := tbl2.Col(2); col2.DictLen() != 100 {
		t.Fatalf("post-delete DictLen %d, want 100", col2.DictLen())
	}
	checkZones(t, tbl2)
	checkStats(t, tbl2)
}

// TestSortedDictRanks checks the opt-in sorted dictionary: ranks order codes
// exactly like their strings, LowerBoundRank matches a naive count, and both
// survive vocabulary growth and compaction.
func TestSortedDictRanks(t *testing.T) {
	db, tbl := newZoneDB(t)
	if err := db.EnableSortedDict("Z", "s"); err != nil {
		t.Fatal(err)
	}
	if err := db.EnableSortedDict("Z", "i"); err == nil {
		t.Fatal("sorted dict on an INT attribute should fail")
	}
	rng := rand.New(rand.NewSource(11))
	words := []string{"delta", "alpha", "echo", "bravo", "charlie", "Æon", "zulu", "año", "apple"}
	for i := 0; i < 500; i++ {
		tup := Tuple{value.NewInt(int64(i)), value.NewNull(), value.NewText(words[rng.Intn(len(words))]), value.NewNull(), value.NewNull()}
		if err := db.Insert("Z", tup); err != nil {
			t.Fatal(err)
		}
	}
	col := tbl.Col(2)
	verify := func() {
		t.Helper()
		if !col.SortedDict() {
			t.Fatal("SortedDict() false after enable")
		}
		ranks := col.Ranks()
		for a := 0; a < col.DictLen(); a++ {
			for b := 0; b < col.DictLen(); b++ {
				sa, sb := col.DictString(uint32(a)), col.DictString(uint32(b))
				if (ranks[a] < ranks[b]) != (sa < sb) {
					t.Fatalf("ranks disagree with strings: %q->%d vs %q->%d", sa, ranks[a], sb, ranks[b])
				}
			}
		}
		for _, probe := range append(append([]string{}, words...), "", "aaaa", "zzzz", "éclair") {
			want := 0
			for c := 0; c < col.DictLen(); c++ {
				if col.DictString(uint32(c)) < probe {
					want++
				}
			}
			if got := col.LowerBoundRank(probe); got != want {
				t.Fatalf("LowerBoundRank(%q) = %d, want %d", probe, got, want)
			}
		}
	}
	verify()
	// Grow the vocabulary: ranks refresh at write completion.
	for i := 0; i < 100; i++ {
		tup := Tuple{value.NewInt(int64(1000 + i)), value.NewNull(), value.NewText(fmt.Sprintf("grow-%03d", 99-i)), value.NewNull(), value.NewNull()}
		if err := db.Insert("Z", tup); err != nil {
			t.Fatal(err)
		}
	}
	verify()
	// Churn away the grown vocabulary: compaction rebuilds ranks over the
	// survivors.
	if _, err := db.Update("Z", func(tup Tuple) bool { return tup[0].Int() >= 1000 }, func(tup Tuple) Tuple {
		repl := tup.Clone()
		repl[2] = value.NewText(words[0])
		return repl
	}); err != nil {
		t.Fatal(err)
	}
	verify()
	checkZones(t, tbl)
}

// TestFrameOfReference checks the Int/Date byte-delta encoding directly:
// decode parity for clustered data (including the rebase path for descending
// values), survival across delete-rebuilds, and the permanent drop once a
// zone's span overflows a byte.
func TestFrameOfReference(t *testing.T) {
	db, tbl := newZoneDB(t)
	null := value.NewNull()
	insInt := func(x int64) {
		t.Helper()
		if err := db.Insert("Z", Tuple{value.NewInt(x), null, null, null, null}); err != nil {
			t.Fatal(err)
		}
	}
	// Clustered: each value repeats 32x, so per-zone span = ZoneRows/32 = 128.
	n := 2*ZoneRows + 300
	for i := 0; i < n; i++ {
		insInt(int64(i >> 5))
	}
	col := tbl.Col(0)
	if _, _, ok := col.FORInts(); !ok {
		t.Fatal("clustered column should keep frame-of-reference encoding")
	}
	checkZones(t, tbl)
	// Descending values exercise the rebase path inside one zone.
	db2, tbl2 := newZoneDB(t)
	for i := 0; i < 200; i++ {
		if err := db2.Insert("Z", Tuple{value.NewInt(int64(200 - i)), null, null, null, null}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := tbl2.Col(0).FORInts(); !ok {
		t.Fatal("descending-in-byte-span column should keep the encoding")
	}
	checkZones(t, tbl2)
	// Delete a middle chunk: the suffix rebuild keeps decode parity.
	if _, err := db.Delete("Z", func(tup Tuple) bool {
		x := tup[0].Int()
		return x >= 40 && x < 80
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := col.FORInts(); !ok {
		t.Fatal("encoding lost across delete-rebuild")
	}
	checkZones(t, tbl)
	// A wide value overflows the zone span: the encoding drops for good.
	insInt(1 << 40)
	if _, _, ok := col.FORInts(); ok {
		t.Fatal("encoding should drop after a byte-span overflow")
	}
	checkZones(t, tbl)
}

// TestMinMaxZoneFold checks that the zone-folding minMax agrees with the
// typed scan on every kind, including NaN-bearing floats.
func TestMinMaxZoneFold(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	db, tbl := newZoneDB(t)
	for i := 0; i < ZoneRows+700; i++ {
		if err := db.Insert("Z", randZTuple(rng)); err != nil {
			t.Fatal(err)
		}
	}
	for p := range tbl.cols {
		c := &tbl.cols[p]
		zlo, zhi := c.minMaxZones()
		slo, shi := c.minMaxScan(tbl.Len())
		eq := func(a, b value.Value) bool {
			if a.IsNull() != b.IsNull() {
				return false
			}
			return a.IsNull() || a.Equal(b)
		}
		if !eq(zlo, slo) || !eq(zhi, shi) {
			t.Fatalf("col %d: zone fold [%v,%v] vs scan [%v,%v]", p, zlo, zhi, slo, shi)
		}
	}
}
