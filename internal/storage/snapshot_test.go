package storage

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/value"
	"repro/internal/wal"
)

// snapDump fingerprints the state visible through a snapshot: every table's
// rows in insertion order, materialized through the frozen columns.
func snapDump(s *Snapshot) string {
	var sb strings.Builder
	for _, name := range s.TableNames() {
		sb.WriteString("== " + name + "\n")
		for _, tup := range s.Table(name).Tuples() {
			for i, v := range tup {
				if i > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(v.Key())
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// TestSnapshotTuplesCacheIsolation pins the compatibility contract of the
// naive scan path under MVCC: a frozen table caches its own materialized
// []Tuple view, the cache is shared by repeated calls on the same snapshot,
// and live writes neither invalidate it nor leak into it.
func TestSnapshotTuplesCacheIsolation(t *testing.T) {
	db := newDurDB(t)
	for i := 0; i < 5; i++ {
		if err := db.Insert("DIRECTOR", Tuple{
			value.NewInt(int64(i)), value.NewText(fmt.Sprintf("dir-%d", i)), value.NewDateDays(int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	snap1 := db.Snapshot()
	frozen := snap1.Table("DIRECTOR")
	first := frozen.Tuples()
	if len(first) != 5 {
		t.Fatalf("snapshot sees %d rows, want 5", len(first))
	}
	second := frozen.Tuples()
	if &first[0][0] != &second[0][0] {
		t.Fatal("repeated Tuples() on one snapshot did not reuse the cached materialization")
	}

	// Mutate the live table every way that could disturb shared vectors:
	// append past the frozen length, COW-update a frozen row, delete.
	for i := 5; i < 10; i++ {
		if err := db.Insert("DIRECTOR", Tuple{
			value.NewInt(int64(i)), value.NewText(fmt.Sprintf("dir-%d", i)), value.NewNull(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Update("DIRECTOR",
		func(tup Tuple) bool { return tup[0].Int() == 0 },
		func(tup Tuple) Tuple { tup[1] = value.NewText("renamed"); return tup }); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Delete("DIRECTOR", func(tup Tuple) bool { return tup[0].Int() == 3 }); err != nil {
		t.Fatal(err)
	}

	third := frozen.Tuples()
	if &first[0][0] != &third[0][0] {
		t.Fatal("live writes invalidated a frozen table's materialization cache")
	}
	if got := third[0][1].Text(); got != "dir-0" {
		t.Fatalf("live update leaked into the pinned snapshot: row 0 name %q", got)
	}
	if len(third) != 5 {
		t.Fatalf("pinned snapshot length changed to %d", len(third))
	}

	// The new version sees everything; its cache is its own.
	snap2 := db.Snapshot()
	if snap2 == snap1 {
		t.Fatal("writes did not publish a new version")
	}
	now := snap2.Table("DIRECTOR").Tuples()
	if len(now) != 9 {
		t.Fatalf("current snapshot sees %d rows, want 9", len(now))
	}
	if got := now[0][1].Text(); got != "renamed" {
		t.Fatalf("current snapshot missed the update: row 0 name %q", got)
	}
}

// TestFailedCommitInstallsNoVersion closes the seal/install window from the
// failure side: when the WAL fsync fails, the version built for the record
// must never install — readers keep the last acknowledged state, the
// published counter does not move, and the layer latches.
func TestFailedCommitInstallsNoVersion(t *testing.T) {
	fs := wal.NewFaultFS(wal.NewMemFS())
	db := newDurDB(t)
	if _, err := db.EnableDurability(fs, DurableOptions{CheckpointBytes: -1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := db.Insert("DIRECTOR", Tuple{
			value.NewInt(int64(i)), value.NewText(fmt.Sprintf("dir-%d", i)), value.NewNull(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	before := db.Snapshot()
	pubBefore := db.Published()
	want := snapDump(before)

	fs.FailSyncsAfter(0)
	err := db.Insert("DIRECTOR", Tuple{value.NewInt(99), value.NewText("phantom"), value.NewNull()})
	if err == nil {
		t.Fatal("insert acknowledged despite fsync failure")
	}

	if db.Snapshot() != before {
		t.Fatal("failed commit installed a version the log never acknowledged")
	}
	if db.Published() != pubBefore {
		t.Fatalf("published counter moved on a failed commit: %d -> %d", pubBefore, db.Published())
	}
	if got := snapDump(db.Snapshot()); got != want {
		t.Fatalf("reader-visible state changed across a failed commit:\n--- want\n%s\n--- got\n%s", want, got)
	}
	if err := db.Insert("DIRECTOR", Tuple{value.NewInt(100), value.NewText("after"), value.NewNull()}); err == nil {
		t.Fatal("writes not latched after fsync failure")
	}
}

// TestCrashMatrixSealInstallWindow extends the crash matrix to the MVCC
// commit's last window: the record fsynced into the log ("sealed") but the
// process gone before installVersion made it visible to readers. Install is
// volatile — the disk after a completed commit is byte-identical to a crash
// inside that window — so recovering a clone taken after any workload prefix
// must land exactly on the state of the version the crashed process had (or
// was about to have) installed, at the same committed sequence.
func TestCrashMatrixSealInstallWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	steps := matrixWorkload(rng)

	fs := wal.NewMemFS()
	live := newDurDB(t)
	if _, err := live.EnableDurability(fs, DurableOptions{CheckpointBytes: -1}); err != nil {
		t.Fatal(err)
	}
	for i, step := range steps {
		step.apply(t, live)
		if i%5 != 0 {
			continue
		}
		disk := fs.Clone()
		db2 := newDurDB(t)
		if _, err := db2.EnableDurability(disk, DurableOptions{CheckpointBytes: -1}); err != nil {
			t.Fatalf("recovery after step %d: %v", i, err)
		}
		if got, want := matrixPrint(t, db2), matrixPrint(t, live); got != want {
			t.Fatalf("step %d: seal/install-window recovery diverges from the installed version\n--- want\n%s\n--- got\n%s", i, want, got)
		}
		if got, want := db2.Snapshot().Seq(), live.Snapshot().Seq(); got != want {
			t.Fatalf("step %d: recovered snapshot seq %d, live %d", i, got, want)
		}
		if got, want := snapDump(db2.Snapshot()), snapDump(live.Snapshot()); got != want {
			t.Fatalf("step %d: recovered snapshot contents diverge\n--- want\n%s\n--- got\n%s", i, want, got)
		}
	}
}
