package storage

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/value"
)

// nullableSchema is a one-relation schema with a nullable indexed attribute.
func nullableSchema(t *testing.T) *Database {
	t.Helper()
	s := catalog.NewSchema("nulls")
	if err := s.AddRelation(&catalog.Relation{
		Name: "T",
		Attributes: []*catalog.Attribute{
			{Name: "id", Type: catalog.Int, NotNull: true},
			{Name: "k", Type: catalog.Int},
			{Name: "s", Type: catalog.Text},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase(s)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestLookupIndexNullSemantics pins SQL equality semantics on hash indexes:
// a NULL probe matches nothing, and tuples with NULL in an indexed
// attribute are invisible to equality probes — exactly what a scan
// evaluating `k = x` keeps under three-valued logic.
func TestLookupIndexNullSemantics(t *testing.T) {
	db := nullableSchema(t)
	tbl := db.Table("T")
	rows := []struct {
		id int64
		k  value.Value
	}{
		{1, value.NewInt(7)},
		{2, value.NewNull()},
		{3, value.NewInt(7)},
		{4, value.NewNull()},
	}
	for _, r := range rows {
		if err := db.Insert("T", Tuple{value.NewInt(r.id), r.k, value.NewText("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.CreateIndex("by_k", "k"); err != nil {
		t.Fatal(err)
	}

	// Equality probe: only the two non-NULL sevens.
	got, err := tbl.LookupIndex("by_k", value.NewInt(7))
	if err != nil || len(got) != 2 {
		t.Fatalf("LookupIndex(7) = %d rows, %v; want 2", len(got), err)
	}
	// NULL probe: nothing — NULL = NULL is unknown, not true.
	got, err = tbl.LookupIndex("by_k", value.NewNull())
	if err != nil || len(got) != 0 {
		t.Fatalf("LookupIndex(NULL) = %d rows, %v; want 0", len(got), err)
	}

	// Agreement with the scan-based path for every key incl. NULL.
	for _, probe := range []value.Value{value.NewInt(7), value.NewInt(99), value.NewNull()} {
		viaIndex, err := tbl.LookupIndex("by_k", probe)
		if err != nil {
			t.Fatal(err)
		}
		var viaScan []Tuple
		tbl.Scan(func(tup Tuple) bool {
			// Scan semantics of `k = probe`: NULL on either side rejects.
			if !tup[1].IsNull() && !probe.IsNull() && tup[1].Equal(probe) {
				viaScan = append(viaScan, tup)
			}
			return true
		})
		if len(viaIndex) != len(viaScan) {
			t.Fatalf("probe %s: index %d rows, scan %d rows", probe, len(viaIndex), len(viaScan))
		}
	}
}

// TestIndexNullSemanticsSurviveDML: the NULL exclusion must hold for tuples
// inserted after index creation and after the Delete/Update rebuild.
func TestIndexNullSemanticsSurviveDML(t *testing.T) {
	db := nullableSchema(t)
	tbl := db.Table("T")
	if err := tbl.CreateIndex("by_k", "k"); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("T", Tuple{value.NewInt(1), value.NewNull(), value.NewText("a")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("T", Tuple{value.NewInt(2), value.NewInt(5), value.NewText("b")}); err != nil {
		t.Fatal(err)
	}
	if got, _ := tbl.LookupIndex("by_k", value.NewNull()); len(got) != 0 {
		t.Fatalf("NULL probe found %d rows after incremental insert", len(got))
	}
	// Update rebuilds indexes; NULLs must stay excluded.
	if _, err := db.Update("T",
		func(tup Tuple) bool { return tup[0].Int() == 2 },
		func(tup Tuple) Tuple { tup[1] = value.NewNull(); return tup }); err != nil {
		t.Fatal(err)
	}
	if got, _ := tbl.LookupIndex("by_k", value.NewInt(5)); len(got) != 0 {
		t.Fatalf("stale index entry for updated-to-NULL key: %d rows", len(got))
	}
	if got, _ := tbl.LookupIndex("by_k", value.NewNull()); len(got) != 0 {
		t.Fatalf("NULL probe found %d rows after rebuild", len(got))
	}
}

// TestLookupPKNullNeverMatches: primary-key probes follow the same rule.
func TestLookupPKNullNeverMatches(t *testing.T) {
	db := nullableSchema(t)
	tbl := db.Table("T")
	if err := db.Insert("T", Tuple{value.NewInt(1), value.NewInt(1), value.NewText("a")}); err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.LookupPK(Tuple{value.NewNull()}); ok {
		t.Fatal("NULL primary-key probe matched")
	}
	if _, ok := tbl.LookupPK(Tuple{value.NewInt(1)}); !ok {
		t.Fatal("valid primary-key probe missed")
	}
}

// TestTupleKeyNoAdjacentCollision pins the satellite fix: composite keys
// built by concatenating per-value strings with a separator collided when a
// text value contained the separator; the length-prefixed encoding cannot.
func TestTupleKeyNoAdjacentCollision(t *testing.T) {
	a := Tuple{value.NewText("a|b"), value.NewText("c")}
	b := Tuple{value.NewText("a"), value.NewText("b|c")}
	pos := []int{0, 1}
	if a.Key(pos) == b.Key(pos) {
		t.Fatalf("adjacent-value collision: %q", a.Key(pos))
	}
	// And the cross-kind invariants of value.Key survive: 1 and 1.0 share a
	// key, "1" does not.
	i := Tuple{value.NewInt(1)}
	f := Tuple{value.NewFloat(1)}
	s := Tuple{value.NewText("1")}
	if i.Key([]int{0}) != f.Key([]int{0}) {
		t.Fatal("1 and 1.0 should share a key")
	}
	if i.Key([]int{0}) == s.Key([]int{0}) {
		t.Fatal(`1 and "1" must not share a key`)
	}
}

// TestCompositeIndexSeparatorCollision: two distinct composite keys that the
// old separator scheme conflated must land in distinct buckets.
func TestCompositeIndexSeparatorCollision(t *testing.T) {
	s := catalog.NewSchema("c")
	if err := s.AddRelation(&catalog.Relation{
		Name: "P",
		Attributes: []*catalog.Attribute{
			{Name: "id", Type: catalog.Int, NotNull: true},
			{Name: "x", Type: catalog.Text},
			{Name: "y", Type: catalog.Text},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase(s)
	if err != nil {
		t.Fatal(err)
	}
	tbl := db.Table("P")
	if err := tbl.CreateIndex("by_xy", "x", "y"); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("P", Tuple{value.NewInt(1), value.NewText("t:a"), value.NewText("b")}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("P", Tuple{value.NewInt(2), value.NewText("t"), value.NewText("a|t:b")}); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.LookupIndex("by_xy", value.NewText("t:a"), value.NewText("b"))
	if err != nil || len(got) != 1 {
		t.Fatalf("composite probe = %d rows, %v; want exactly the first tuple", len(got), err)
	}
}

// TestStatsIncremental: row counts, distinct counts, and min/max follow
// Insert incrementally and survive the Delete/Update rebuild.
func TestStatsIncremental(t *testing.T) {
	db := nullableSchema(t)
	tbl := db.Table("T")
	for i, k := range []int64{10, 20, 20, 30} {
		if err := db.Insert("T", Tuple{value.NewInt(int64(i)), value.NewInt(k), value.NewText("s")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert("T", Tuple{value.NewInt(9), value.NewNull(), value.NewNull()}); err != nil {
		t.Fatal(err)
	}
	st := tbl.Stats()
	if st.Rows != 5 {
		t.Fatalf("Rows = %d", st.Rows)
	}
	k := st.Attrs[1]
	if k.Distinct != 3 || k.NonNull != 4 {
		t.Fatalf("k stats = %+v", k)
	}
	if k.Min.Int() != 10 || k.Max.Int() != 30 {
		t.Fatalf("k min/max = %s/%s", k.Min, k.Max)
	}
	if d, err := db.DistinctCount("T", "k"); err != nil || d != 3 {
		t.Fatalf("DistinctCount = %d, %v", d, err)
	}

	// Delete the only 30; the rebuild must drop it from distinct and max.
	if _, err := db.Delete("T", func(tup Tuple) bool {
		return !tup[1].IsNull() && tup[1].Int() == 30
	}); err != nil {
		t.Fatal(err)
	}
	st = tbl.Stats()
	if st.Rows != 4 || st.Attrs[1].Distinct != 2 {
		t.Fatalf("after delete: rows %d distinct %d", st.Rows, st.Attrs[1].Distinct)
	}
	if st.Attrs[1].Max.Int() != 20 {
		t.Fatalf("after delete: max = %s", st.Attrs[1].Max)
	}
}
