// Package storage implements the in-memory relational storage substrate the
// translation pipeline runs against: columnar tables (one typed vector per
// attribute, dictionary-encoded text, null bitmaps) with primary-key /
// foreign-key / NOT NULL enforcement, hash indexes, and CSV import/export.
//
// The paper assumes a DBMS holds the schema and data whose contents and
// queries are translated; this package (together with internal/engine) is
// that DBMS, built from scratch so the whole reproduction is self-contained
// and deterministic.
//
// Storage layout: a Table holds one column per attribute — []int64 for INT,
// []float64 for FLOAT, []uint32 dictionary codes plus a per-column string
// dictionary for TEXT, epoch-day []int64 for DATE, []bool for BOOL — each
// with a packed null bitmap. The Tuple-based API (Tuple, Tuples, Scan,
// LookupPK, LookupIndex) is a compatibility surface that materializes rows
// on demand; Tuples() caches the materialization until the next write. The
// query engine's hot paths bypass tuples entirely through Col handles and
// CopyRow.
package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/value"
)

// Tuple is one row: values positionally aligned with the relation's
// attributes.
type Tuple []value.Value

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// AppendKey appends the collision-free composite key of the given attribute
// positions to buf (see value.AppendKey). Callers that probe hash maps reuse
// one buffer and look up with m[string(buf)], which Go compiles without an
// allocation.
func (t Tuple) AppendKey(buf []byte, positions []int) []byte {
	for _, p := range positions {
		buf = t[p].AppendKey(buf)
	}
	return buf
}

// Key builds a composite map key over the given attribute positions. Every
// value is length-prefixed or fixed-width, so adjacent values cannot collide
// the way separator-joined string keys can ("a|b","c" vs "a","b|c").
func (t Tuple) Key(positions []int) string {
	return string(t.AppendKey(nil, positions))
}

// String renders the tuple for debugging: (1, Match Point, 2005).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Table stores one relation as column vectors plus its indexes and
// statistics.
type Table struct {
	rel  *catalog.Relation
	cols []column
	rows int
	// owner points back to the containing database so table-level DDL
	// (CreateIndex) can reach the durability layer.
	owner *Database
	// pk maps composite primary-key value keys to row positions.
	pk map[string]int
	// secondary maps index name -> (value key -> row positions).
	secondary map[string]*hashIndex
	pkPos     []int
	// stats carries per-attribute statistics, maintained incrementally on
	// Insert, Delete, and Update (bounds are rescanned only when a removed
	// value touched them).
	stats tableStats
	// keyBuf is writer-side scratch for key encoding; writers are exclusive
	// per the storage contract, readers never touch it.
	keyBuf []byte
	// mat caches the materialized []Tuple view handed out by Tuples() and
	// Scan; any write clears it. A frozen table gets its own zero-value mat,
	// so each snapshot caches its own materialization and naive-engine
	// readers can never observe a half-committed write. Concurrent readers
	// may race to fill it — materialization is deterministic, so
	// last-store-wins is harmless.
	mat atomic.Pointer[[]Tuple]
	// idxMu guards pk and the secondary buckets, which are shared between the
	// live table and its frozen snapshot views: writers mutate under it,
	// snapshot probes read under it and filter positions past their frozen
	// row count. The pointer is shared across freezes.
	idxMu *sync.RWMutex
	// frozen marks an immutable snapshot view (see snapshot.go); statsView is
	// its point-in-time statistics. Live tables compute Stats() from the
	// incrementally maintained tableStats instead.
	frozen    bool
	statsView *TableStats
	// shared marks that the live vectors are referenced by a published
	// snapshot: the next in-place mutation must prepareMutate first, and
	// dictionary compaction is deferred until then. dirty marks the table as
	// changed since the last publish, so a publish re-freezes only what a
	// statement touched. Both are guarded by db.mu.
	shared bool
	dirty  bool
}

type hashIndex struct {
	positions []int
	buckets   map[string][]int
}

// nullKey reports whether the tuple is NULL in any of the given positions —
// such tuples are invisible to index equality probes (SQL: NULL = x is
// unknown), so they are never entered into hash-index buckets.
func nullKey(tup Tuple, positions []int) bool {
	for _, p := range positions {
		if tup[p].IsNull() {
			return true
		}
	}
	return false
}

// nullKeyAt is nullKey over stored columns.
func (t *Table) nullKeyAt(row int, positions []int) bool {
	for _, p := range positions {
		if t.cols[p].nulls.get(row) {
			return true
		}
	}
	return false
}

// appendKeyAt appends the composite key of the given attribute positions of
// row i, reading the column vectors directly.
func (t *Table) appendKeyAt(buf []byte, row int, positions []int) []byte {
	for _, p := range positions {
		buf = t.cols[p].value(row).AppendKey(buf)
	}
	return buf
}

// Relation returns the catalog metadata of the table.
func (t *Table) Relation() *catalog.Relation { return t.rel }

// Len returns the number of rows.
func (t *Table) Len() int { return t.rows }

// Col returns a read-only handle on the pos-th column vector.
func (t *Table) Col(pos int) Col { return Col{c: &t.cols[pos]} }

// CopyRow materializes row i into dst, which must have one slot per
// attribute. It performs no allocation (text shares dictionary strings) —
// the engine's arena pipeline fills row slots with it directly.
func (t *Table) CopyRow(dst []value.Value, i int) {
	for j := range t.cols {
		dst[j] = t.cols[j].value(i)
	}
}

// materializeRow builds a fresh Tuple for row i.
func (t *Table) materializeRow(i int) Tuple {
	tup := make(Tuple, len(t.cols))
	t.CopyRow(tup, i)
	return tup
}

// invalidate drops the cached materialized view (every write path calls it).
func (t *Table) invalidate() { t.mat.Store(nil) }

// Tuple returns the i-th row, materialized. The tuple is shared when the
// table-wide materialization cache is warm; callers must not mutate it.
func (t *Table) Tuple(i int) Tuple {
	if m := t.mat.Load(); m != nil {
		return (*m)[i]
	}
	return t.materializeRow(i)
}

// Tuples returns all rows in insertion order, materialized from the column
// vectors and cached until the next write (shared slice; do not mutate).
func (t *Table) Tuples() []Tuple {
	if m := t.mat.Load(); m != nil {
		return *m
	}
	out := make([]Tuple, t.rows)
	flat := make([]value.Value, t.rows*len(t.cols))
	w := len(t.cols)
	for i := 0; i < t.rows; i++ {
		row := flat[i*w : (i+1)*w : (i+1)*w]
		t.CopyRow(row, i)
		out[i] = row
	}
	t.mat.Store(&out)
	return out
}

// Scan calls fn for each row until fn returns false. A warm materialization
// cache is iterated directly; otherwise rows materialize one at a time, so
// an early-stopping scan (entity point lookups) never pays for the whole
// table. Either way each handed-out tuple is safe to retain.
func (t *Table) Scan(fn func(Tuple) bool) {
	if m := t.mat.Load(); m != nil {
		for _, tup := range *m {
			if !fn(tup) {
				return
			}
		}
		return
	}
	for i := 0; i < t.rows; i++ {
		if !fn(t.materializeRow(i)) {
			return
		}
	}
}

// LookupPK returns the tuple with the given primary-key values, if any. A
// NULL key value never matches (an index equality probe follows SQL
// comparison semantics, where NULL = x is unknown).
func (t *Table) LookupPK(key Tuple) (Tuple, bool) {
	if t.pk == nil {
		return nil, false
	}
	for _, v := range key {
		if v.IsNull() {
			return nil, false
		}
	}
	var kb [64]byte
	buf := key.AppendKey(kb[:0], identityPositions(len(key)))
	t.idxMu.RLock()
	pos, ok := t.pk[string(buf)]
	t.idxMu.RUnlock()
	// Positions at or past the view's row count belong to rows committed
	// after a frozen snapshot — invisible to it.
	if ok && pos < t.rows {
		return t.Tuple(pos), true
	}
	return nil, false
}

// identityPositions returns [0, 1, ..., n-1] without allocating for small n.
func identityPositions(n int) []int {
	if n <= len(identityPos) {
		return identityPos[:n]
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

var identityPos = []int{0, 1, 2, 3, 4, 5, 6, 7}

// PKPositions returns the attribute positions of the primary key in
// declaration order, or nil when the relation has none. The slice is shared;
// callers must not mutate it.
func (t *Table) PKPositions() []int {
	if t.pk == nil {
		return nil
	}
	return t.pkPos
}

// LookupPKPos returns the row position for an encoded primary-key probe
// (built with Tuple.AppendKey / value.AppendKey over PKPositions). The caller
// must not encode NULL key values — a NULL probe never matches.
func (t *Table) LookupPKPos(key []byte) (int, bool) {
	t.idxMu.RLock()
	pos, ok := t.pk[string(key)]
	t.idxMu.RUnlock()
	if ok && pos >= t.rows {
		return 0, false // inserted after this view froze
	}
	return pos, ok
}

// CreateIndex builds a named hash index over the given attributes. Rows
// with a NULL value in any indexed attribute are not entered: an index
// equality probe can never match NULL, mirroring WHERE-clause comparison
// semantics.
func (t *Table) CreateIndex(name string, attrs ...string) error {
	if _, dup := t.secondary[name]; dup {
		return fmt.Errorf("storage: duplicate index %q on %s", name, t.rel.Name)
	}
	positions := make([]int, len(attrs))
	for i, a := range attrs {
		p := t.rel.AttrIndex(a)
		if p < 0 {
			return fmt.Errorf("storage: index %q on %s references unknown attribute %q", name, t.rel.Name, a)
		}
		positions[i] = p
	}
	idx := &hashIndex{positions: positions, buckets: make(map[string][]int)}
	for pos := 0; pos < t.rows; pos++ {
		if t.nullKeyAt(pos, positions) {
			continue
		}
		t.keyBuf = t.appendKeyAt(t.keyBuf[:0], pos, positions)
		idx.buckets[string(t.keyBuf)] = append(idx.buckets[string(t.keyBuf)], pos)
	}
	t.idxMu.Lock()
	if t.secondary == nil {
		t.secondary = make(map[string]*hashIndex)
	}
	t.secondary[name] = idx
	t.idxMu.Unlock()
	if t.owner != nil && t.owner.dur != nil {
		// The pending buffer is guarded by db.mu. During recovery dur is nil
		// (this branch is never taken under loadCheckpoint's lock), so taking
		// the lock here cannot deadlock.
		t.owner.mu.Lock()
		t.dirty = true
		t.owner.dur.logCreateIndex(t.rel.Name, name, attrs)
		t.owner.mu.Unlock()
		return t.owner.autoCommit()
	}
	if t.owner != nil && !t.owner.recovering.Load() {
		// In-memory path: publish so snapshot planners see the access path.
		// During recovery (loadCheckpoint holds db.mu) publishes are
		// suppressed, which also keeps this lock acquisition safe.
		t.owner.mu.Lock()
		t.dirty = true
		t.owner.publishLocked(t.owner.nextPubSeqLocked())
		t.owner.mu.Unlock()
	}
	return nil
}

// LookupIndex returns tuples matching the key values on the named index. A
// NULL key value never matches any tuple, and tuples that are NULL in an
// indexed attribute are never returned — identical to what a scan evaluating
// `attr = key` would keep.
func (t *Table) LookupIndex(name string, key ...value.Value) ([]Tuple, error) {
	t.idxMu.RLock()
	idx, ok := t.secondary[name]
	t.idxMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: unknown index %q on %s", name, t.rel.Name)
	}
	if len(key) != len(idx.positions) {
		return nil, fmt.Errorf("storage: index %q expects %d key values, got %d", name, len(idx.positions), len(key))
	}
	for _, v := range key {
		if v.IsNull() {
			return nil, nil
		}
	}
	var kb [64]byte
	buf := Tuple(key).AppendKey(kb[:0], identityPositions(len(key)))
	t.idxMu.RLock()
	positions := idx.buckets[string(buf)]
	t.idxMu.RUnlock()
	out := make([]Tuple, 0, len(positions))
	for _, p := range positions {
		if p >= t.rows {
			break // appended after this view froze; bucket positions ascend
		}
		out = append(out, t.Tuple(p))
	}
	return out, nil
}

// Index is a read-only handle on a secondary hash index, used by the query
// planner's index-nested-loop joins to probe without per-call name lookups.
type Index struct {
	t   *Table
	idx *hashIndex
}

// Index returns a handle on the named secondary index, or nil.
func (t *Table) Index(name string) *Index {
	t.idxMu.RLock()
	idx, ok := t.secondary[name]
	t.idxMu.RUnlock()
	if !ok {
		return nil
	}
	return &Index{t: t, idx: idx}
}

// KeyPositions returns the indexed attribute positions in key order. The
// slice is shared; callers must not mutate it.
func (ix *Index) KeyPositions() []int { return ix.idx.positions }

// Probe returns the positions of rows matching an encoded key (built with
// value.AppendKey over the key values in KeyPositions order), in insertion
// order. The slice is shared; callers must not mutate it. Callers must not
// encode NULL key values — a NULL probe never matches.
func (ix *Index) Probe(key []byte) []int {
	ix.t.idxMu.RLock()
	positions := ix.idx.buckets[string(key)]
	ix.t.idxMu.RUnlock()
	// Positions appended after a frozen view's boundary belong to rows it
	// cannot see; buckets grow in ascending order, so trim from the tail.
	for len(positions) > 0 && positions[len(positions)-1] >= ix.t.rows {
		positions = positions[:len(positions)-1]
	}
	return positions
}

// IndexInfo describes one secondary index for planning.
type IndexInfo struct {
	Name string
	// Attrs are the indexed attribute names in key order.
	Attrs []string
	// Positions are the corresponding attribute positions.
	Positions []int
}

// IndexInfos lists the table's secondary indexes sorted by name (so plans
// are deterministic).
func (t *Table) IndexInfos() []IndexInfo {
	t.idxMu.RLock()
	secondary := t.secondary
	t.idxMu.RUnlock()
	if len(secondary) == 0 {
		return nil
	}
	out := make([]IndexInfo, 0, len(secondary))
	for name, idx := range secondary {
		info := IndexInfo{Name: name, Positions: idx.positions}
		for _, p := range idx.positions {
			info.Attrs = append(info.Attrs, t.rel.Attributes[p].Name)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Database is a schema plus one table per relation. It is safe for
// concurrent readers; writers must not run concurrently with anyone else.
type Database struct {
	mu     sync.RWMutex
	schema *catalog.Schema
	tables map[string]*Table
	// dur is the attached durability layer (durable.go), nil for a purely
	// in-memory database. It is set once by EnableDurability before any
	// concurrent use and consulted by the DML paths to log applied ops.
	dur *durability
	// version is the published MVCC snapshot (snapshot.go): readers pin it
	// once and run lock-free against frozen tables. pubSeq is the sequence of
	// the last publish (guarded by db.mu); durable commits publish at the WAL
	// sequence instead. published counts installed versions; recovering
	// suppresses per-op publishes while the WAL replays.
	version    atomic.Pointer[Snapshot]
	pubSeq     uint64
	published  atomic.Uint64
	recovering atomic.Bool
	// readOnly marks a replication follower (replication.go): local mutations
	// are refused, replicated applies replay under the recovering flag.
	readOnly atomic.Bool
}

// NewDatabase creates empty tables for every relation in the schema.
func NewDatabase(schema *catalog.Schema) (*Database, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	db := &Database{schema: schema, tables: make(map[string]*Table)}
	for _, r := range schema.Relations() {
		tbl := &Table{rel: r, cols: make([]column, len(r.Attributes)), owner: db, idxMu: &sync.RWMutex{}}
		for i, a := range r.Attributes {
			tbl.cols[i] = newColumn(value.CatalogKind(a.Type))
		}
		tbl.stats.init(r)
		if len(r.PrimaryKey) > 0 {
			tbl.pk = make(map[string]int)
			tbl.pkPos = make([]int, len(r.PrimaryKey))
			for i, k := range r.PrimaryKey {
				tbl.pkPos[i] = r.AttrIndex(k)
			}
		}
		tbl.dirty = true
		db.tables[strings.ToLower(r.Name)] = tbl
	}
	// Publish version zero so snapshot readers exist from the first moment.
	db.mu.Lock()
	db.publishLocked(0)
	db.mu.Unlock()
	return db, nil
}

// Schema returns the catalog schema.
func (db *Database) Schema() *catalog.Schema { return db.schema }

// Table returns the table for the named relation, or nil.
func (db *Database) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[strings.ToLower(name)]
}

// TableNames returns the sorted relation names that have tables.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.rel.Name)
	}
	sort.Strings(names)
	return names
}

// writeOK rejects a mutation up front when the WAL has latched failed (the
// op could never be flushed, so refusing before applying keeps the in-memory
// state aligned with what the log can acknowledge) or when the database is a
// read-only replication follower (replicated applies run under the
// recovering flag and pass).
func (db *Database) writeOK() error {
	if db.readOnly.Load() && !db.recovering.Load() {
		return ErrReadOnlyReplica
	}
	if d := db.dur; d != nil {
		return d.failedErr()
	}
	return nil
}

// Insert validates and appends a tuple to the named relation. Checks, in
// order: arity, NOT NULL, type conformance, primary-key uniqueness, and
// foreign-key existence.
func (db *Database) Insert(relName string, tup Tuple) error {
	if err := db.writeOK(); err != nil {
		return err
	}
	db.mu.Lock()
	err := db.insertLocked(relName, tup)
	if db.dur == nil {
		// In-memory commit point: install the new version while still holding
		// db.mu. Durable databases publish at WAL-commit time instead, so the
		// snapshot seq always names an fsynced prefix.
		db.publishLocked(db.nextPubSeqLocked())
	}
	db.mu.Unlock()
	if err != nil {
		return err
	}
	// Outside an explicit statement batch the insert commits (fsyncs) on its
	// own; the flush runs after mu is released because a triggered
	// checkpoint re-acquires it for reading.
	return db.autoCommit()
}

func (db *Database) insertLocked(relName string, tup Tuple) error {
	tbl := db.tables[strings.ToLower(relName)]
	if tbl == nil {
		return fmt.Errorf("storage: unknown relation %q", relName)
	}
	r := tbl.rel
	if len(tup) != len(r.Attributes) {
		return fmt.Errorf("storage: %s expects %d values, got %d", r.Name, len(r.Attributes), len(tup))
	}
	for i, a := range r.Attributes {
		v := tup[i]
		if v.IsNull() {
			if a.NotNull {
				return fmt.Errorf("storage: %s.%s is NOT NULL", r.Name, a.Name)
			}
			continue
		}
		want := value.CatalogKind(a.Type)
		if v.Kind() != want {
			coerced, err := value.Coerce(v, want)
			if err != nil {
				return fmt.Errorf("storage: %s.%s: %v", r.Name, a.Name, err)
			}
			tup[i] = coerced
		}
	}
	var pkKey string
	if tbl.pk != nil {
		tbl.keyBuf = tup.AppendKey(tbl.keyBuf[:0], tbl.pkPos)
		if _, dup := tbl.pk[string(tbl.keyBuf)]; dup {
			return fmt.Errorf("storage: duplicate primary key %s in %s", tup.pkString(tbl.pkPos), r.Name)
		}
		pkKey = string(tbl.keyBuf)
	}
	for _, fk := range r.ForeignKey {
		if err := db.checkForeignKey(r, fk, tup); err != nil {
			return err
		}
	}
	// Index insertions mutate maps shared with frozen snapshot views, so they
	// run under idxMu; the new positions sit at or past every frozen row
	// count, which the snapshot-side probes filter out.
	tbl.idxMu.Lock()
	for _, idx := range tbl.secondary {
		if nullKey(tup, idx.positions) {
			continue
		}
		k := tup.Key(idx.positions)
		idx.buckets[k] = append(idx.buckets[k], tbl.rows)
	}
	if tbl.pk != nil {
		tbl.pk[pkKey] = tbl.rows
	}
	tbl.idxMu.Unlock()
	for i := range tbl.cols {
		tbl.cols[i].appendVal(tup[i], tbl.rows)
	}
	tbl.rows++
	tbl.stats.add(tup, &tbl.keyBuf)
	// Zone maps were extended incrementally by appendVal; sorted-dict ranks
	// rebuild lazily on the next ranked read, so bulk loads stay linear.
	tbl.dirty = true
	tbl.invalidate()
	if db.dur != nil {
		db.dur.logInsert(r.Name, tup)
	}
	return nil
}

// pkString renders primary-key values for error messages.
func (t Tuple) pkString(positions []int) string {
	parts := make([]string, len(positions))
	for i, p := range positions {
		parts[i] = t[p].String()
	}
	return strings.Join(parts, "|")
}

func (db *Database) checkForeignKey(r *catalog.Relation, fk catalog.ForeignKey, tup Tuple) error {
	ref := db.tables[strings.ToLower(fk.RefRelation)]
	if ref == nil {
		return fmt.Errorf("storage: foreign key of %s references missing table %q", r.Name, fk.RefRelation)
	}
	keyVals := make(Tuple, len(fk.Attrs))
	for i, a := range fk.Attrs {
		v := tup[r.AttrIndex(a)]
		if v.IsNull() {
			return nil // SQL: NULL FK values are not checked
		}
		keyVals[i] = v
	}
	// Fast path: FK references the primary key.
	if ref.rel.IsPrimaryKey(fk.RefAttrs) && ref.pk != nil {
		ordered := make(Tuple, len(fk.RefAttrs))
		for i, pos := range ref.pkPos {
			// pkPos is in PK declaration order; align keyVals to it.
			for j, ra := range fk.RefAttrs {
				if ref.rel.AttrIndex(ra) == pos {
					ordered[i] = keyVals[j]
				}
			}
		}
		if _, ok := ref.LookupPK(ordered); !ok {
			return fmt.Errorf("storage: foreign key violation: %s(%s) -> %s(%s) value %s not found",
				r.Name, strings.Join(fk.Attrs, ","), fk.RefRelation, strings.Join(fk.RefAttrs, ","), keyVals.String())
		}
		return nil
	}
	// Slow path: scan the referenced columns.
	refPos := make([]int, len(fk.RefAttrs))
	for i, a := range fk.RefAttrs {
		refPos[i] = ref.rel.AttrIndex(a)
	}
	for row := 0; row < ref.rows; row++ {
		match := true
		for i, p := range refPos {
			if ref.cols[p].nulls.get(row) || !ref.cols[p].value(row).Equal(keyVals[i]) {
				match = false
				break
			}
		}
		if match {
			return nil
		}
	}
	return fmt.Errorf("storage: foreign key violation: %s -> %s value %s not found",
		r.Name, fk.RefRelation, keyVals.String())
}

// Delete removes all rows of relName matching pred and returns the count.
// Statistics are decremented incrementally (bounds rescanned only when a
// removed value touched the current min/max); indexes are rebuilt.
func (db *Database) Delete(relName string, pred func(Tuple) bool) (int, error) {
	if err := db.writeOK(); err != nil {
		return 0, err
	}
	db.mu.Lock()
	removed, _, err := db.deleteLocked(relName, func(_ int, tup Tuple) bool { return pred(tup) })
	if db.dur == nil {
		db.publishLocked(db.nextPubSeqLocked())
	}
	db.mu.Unlock()
	// Flush even on error: a failed scan may still have removed rows before
	// the failure, and those are applied state that must reach the log now —
	// not ride along inside the next statement's record.
	if ferr := db.autoCommit(); err == nil {
		err = ferr
	}
	return removed, err
}

// deleteLocked is the shared delete scan: pred sees the pre-compaction row
// position plus the materialized tuple, and the matched positions come back
// in ascending order (they are what the WAL records — recovery replays a
// DELETE by position, not by re-evaluating the predicate).
func (db *Database) deleteLocked(relName string, pred func(int, Tuple) bool) (int, []int, error) {
	tbl := db.tables[strings.ToLower(relName)]
	if tbl == nil {
		return 0, nil, fmt.Errorf("storage: unknown relation %q", relName)
	}
	w := 0
	var positions []int
	dirtyFrom := -1 // first removed row: zones from its morsel onward rebuild
	// One scratch tuple serves every pred call, keeping the scan
	// allocation-free. This narrows the contract: pred must not retain its
	// argument across calls (clone it to keep it). The engine's DML
	// predicates evaluate synchronously and never retain.
	scratch := make(Tuple, len(tbl.cols))
	for i := 0; i < tbl.rows; i++ {
		tbl.CopyRow(scratch, i)
		if pred(i, scratch) {
			if dirtyFrom < 0 {
				dirtyFrom = i
				// First in-place mutation of a possibly-shared table: unshare
				// the vectors so frozen snapshot readers keep the originals.
				// A zero-match delete never pays for the clone.
				tbl.prepareMutate()
			}
			positions = append(positions, i)
			tbl.stats.remove(scratch, &tbl.keyBuf)
			for j := range tbl.cols {
				tbl.cols[j].releaseRow(i)
			}
			continue
		}
		if w != i {
			for j := range tbl.cols {
				tbl.cols[j].moveRow(w, i)
			}
		}
		w++
	}
	for j := range tbl.cols {
		tbl.cols[j].truncate(w)
	}
	tbl.rows = w
	tbl.rebuildIndexes()
	tbl.finishWrite(dirtyFrom)
	tbl.fixStatBounds() // after finishWrite: minMax folds the fresh zones
	tbl.dirty = true
	tbl.invalidate()
	if db.dur != nil && len(positions) > 0 {
		db.dur.logDelete(tbl.rel.Name, positions)
	}
	return len(positions), positions, nil
}

// Update applies fn to every row of relName matching pred; fn must return
// the replacement tuple. Constraints are re-checked on the replacement, and
// statistics are adjusted incrementally (old values out, new values in).
func (db *Database) Update(relName string, pred func(Tuple) bool, fn func(Tuple) Tuple) (int, error) {
	if err := db.writeOK(); err != nil {
		return 0, err
	}
	db.mu.Lock()
	updated, err := db.updateLocked(relName, func(_ int, tup Tuple) bool { return pred(tup) }, fn)
	if db.dur == nil {
		db.publishLocked(db.nextPubSeqLocked())
	}
	db.mu.Unlock()
	// Flush even on error: rows updated before a mid-scan constraint failure
	// are applied state and must reach the log at this statement boundary.
	if ferr := db.autoCommit(); err == nil {
		err = ferr
	}
	return updated, err
}

// updateLocked is the shared update scan: pred sees the row position plus
// the materialized tuple. Applied (position, replacement) pairs are logged —
// even when a constraint aborts the loop midway, because the earlier rows
// really were updated and recovery must reproduce them.
func (db *Database) updateLocked(relName string, pred func(int, Tuple) bool, fn func(Tuple) Tuple) (int, error) {
	tbl := db.tables[strings.ToLower(relName)]
	if tbl == nil {
		return 0, fmt.Errorf("storage: unknown relation %q", relName)
	}
	r := tbl.rel
	updated := 0
	var changed []updatedRow
	dirtyFrom := -1 // first updated row: zones from its morsel onward rebuild
	// Indexes, bounds, and the materialized view are refreshed even when a
	// constraint aborts the loop midway: earlier rows were already updated.
	defer func() {
		tbl.rebuildIndexes()
		tbl.finishWrite(dirtyFrom)
		tbl.fixStatBounds() // after finishWrite: minMax folds the fresh zones
		tbl.dirty = true
		tbl.invalidate()
		if db.dur != nil && len(changed) > 0 {
			db.dur.logUpdate(tbl.rel.Name, changed)
		}
	}()
	old := make(Tuple, len(tbl.cols)) // reused pred scratch; see Delete
	for i := 0; i < tbl.rows; i++ {
		tbl.CopyRow(old, i)
		if !pred(i, old) {
			continue
		}
		repl := fn(old.Clone())
		if len(repl) != len(r.Attributes) {
			return updated, fmt.Errorf("storage: update of %s produced wrong arity", r.Name)
		}
		for j, a := range r.Attributes {
			if repl[j].IsNull() && a.NotNull {
				return updated, fmt.Errorf("storage: %s.%s is NOT NULL", r.Name, a.Name)
			}
			if !repl[j].IsNull() {
				want := value.CatalogKind(a.Type)
				if repl[j].Kind() != want {
					coerced, err := value.Coerce(repl[j], want)
					if err != nil {
						return updated, fmt.Errorf("storage: %s.%s: %v", r.Name, a.Name, err)
					}
					repl[j] = coerced
				}
			}
		}
		if dirtyFrom < 0 {
			dirtyFrom = i
			// First overwrite of a possibly-shared table: unshare the vectors
			// so frozen snapshot readers keep the originals.
			tbl.prepareMutate()
		}
		for j := range tbl.cols {
			tbl.cols[j].setVal(i, repl[j])
		}
		tbl.stats.remove(old, &tbl.keyBuf)
		tbl.stats.add(repl, &tbl.keyBuf)
		changed = append(changed, updatedRow{pos: i, repl: repl})
		updated++
	}
	return updated, nil
}

// rebuildIndexes rebuilds the primary-key map and every secondary index after
// rows moved (DELETE compaction, UPDATE key changes). It builds fresh maps
// and swaps them in under idxMu: frozen snapshot views keep the previous —
// now immutable — maps, whose positions still describe the frozen row layout
// that the frozen vectors hold.
func (t *Table) rebuildIndexes() {
	var pk map[string]int
	if t.pk != nil {
		pk = make(map[string]int, t.rows)
		for pos := 0; pos < t.rows; pos++ {
			t.keyBuf = t.appendKeyAt(t.keyBuf[:0], pos, t.pkPos)
			pk[string(t.keyBuf)] = pos
		}
	}
	var secondary map[string]*hashIndex
	if len(t.secondary) > 0 {
		secondary = make(map[string]*hashIndex, len(t.secondary))
		for name, idx := range t.secondary {
			fresh := &hashIndex{positions: idx.positions, buckets: make(map[string][]int, t.rows)}
			for pos := 0; pos < t.rows; pos++ {
				if t.nullKeyAt(pos, fresh.positions) {
					continue
				}
				t.keyBuf = t.appendKeyAt(t.keyBuf[:0], pos, fresh.positions)
				fresh.buckets[string(t.keyBuf)] = append(fresh.buckets[string(t.keyBuf)], pos)
			}
			secondary[name] = fresh
		}
	}
	t.idxMu.Lock()
	if pk != nil {
		t.pk = pk
	}
	if secondary != nil {
		t.secondary = secondary
	}
	t.idxMu.Unlock()
}

// LoadCSV bulk-loads a relation from CSV with a header row naming the
// attributes (any order). Empty cells load as NULL. The load is atomic: on
// any error — malformed CSV, a value that does not parse, a constraint
// violation — the table is restored to its pre-load state and the count is
// zero. Nothing half-loaded survives, in memory or in the log.
func (db *Database) LoadCSV(relName string, r io.Reader) (int, error) {
	if err := db.writeOK(); err != nil {
		return 0, err
	}
	tbl := db.Table(relName)
	if tbl == nil {
		return 0, fmt.Errorf("storage: unknown relation %q", relName)
	}
	rel := tbl.rel
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("storage: reading CSV header for %s: %v", relName, err)
	}
	colPos := make([]int, len(header))
	for i, h := range header {
		p := rel.AttrIndex(strings.TrimSpace(h))
		if p < 0 {
			return 0, fmt.Errorf("storage: CSV header %q is not an attribute of %s", h, relName)
		}
		colPos[i] = p
	}
	// Parse every record before touching the table: syntax and value errors
	// reject the whole file without a single mutation to undo.
	var tuples []Tuple
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("storage: reading CSV row for %s: %v", relName, err)
		}
		tup := make(Tuple, len(rel.Attributes))
		for i, cell := range rec {
			a := rel.Attributes[colPos[i]]
			v, err := value.Parse(cell, value.CatalogKind(a.Type))
			if err != nil {
				return 0, fmt.Errorf("storage: %s row %d: %v", relName, len(tuples)+1, err)
			}
			tup[colPos[i]] = v
		}
		tuples = append(tuples, tup)
	}
	// Insert under one statement batch: the whole load is one WAL record.
	// A constraint failure mid-way rolls the already-inserted suffix back
	// out of the table and discards the batch's ops from the log.
	db.BeginBatch()
	db.mu.Lock()
	start := tbl.rows
	for n, tup := range tuples {
		if err := db.insertLocked(relName, tup); err != nil {
			db.rollbackSuffixLocked(tbl, start)
			db.mu.Unlock()
			db.DiscardBatch()
			return 0, fmt.Errorf("storage: %s row %d: %v", relName, n+1, err)
		}
	}
	if db.dur == nil {
		db.publishLocked(db.nextPubSeqLocked())
	}
	db.mu.Unlock()
	if err := db.CommitBatch(); err != nil {
		return 0, err
	}
	return len(tuples), nil
}

// rollbackSuffixLocked removes rows [start, tbl.rows) — the suffix a failed
// bulk load appended — restoring statistics, indexes, and zone maps.
func (db *Database) rollbackSuffixLocked(tbl *Table, start int) {
	if tbl.rows <= start {
		return
	}
	scratch := make(Tuple, len(tbl.cols))
	for i := start; i < tbl.rows; i++ {
		tbl.CopyRow(scratch, i)
		tbl.stats.remove(scratch, &tbl.keyBuf)
		for j := range tbl.cols {
			tbl.cols[j].releaseRow(i)
		}
	}
	for j := range tbl.cols {
		tbl.cols[j].truncate(start)
	}
	tbl.rows = start
	tbl.rebuildIndexes()
	tbl.finishWrite(start)
	tbl.fixStatBounds()
	tbl.dirty = true
	tbl.invalidate()
}

// RollbackInsertSuffix removes relName's rows from position keep onward —
// the in-memory half of cancelling a partially applied INSERT (the caller
// discards the statement's batch for the log-side half). Statistics,
// indexes, and zone maps are restored; a non-durable database publishes the
// rolled-back state so snapshot readers never see the cancelled suffix.
func (db *Database) RollbackInsertSuffix(relName string, keep int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	tbl := db.tables[strings.ToLower(relName)]
	if tbl == nil {
		return
	}
	db.rollbackSuffixLocked(tbl, keep)
	if db.dur == nil {
		db.publishLocked(db.nextPubSeqLocked())
	}
}

// DumpCSV writes the relation as CSV with a header row.
func (db *Database) DumpCSV(relName string, w io.Writer) error {
	tbl := db.Table(relName)
	if tbl == nil {
		return fmt.Errorf("storage: unknown relation %q", relName)
	}
	cw := csv.NewWriter(w)
	header := make([]string, len(tbl.rel.Attributes))
	for i, a := range tbl.rel.Attributes {
		header[i] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(tbl.cols))
	for row := 0; row < tbl.rows; row++ {
		for i := range tbl.cols {
			if tbl.cols[i].nulls.get(row) {
				rec[i] = ""
			} else {
				rec[i] = tbl.cols[i].value(row).String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Stats summarizes table cardinalities; the explain subsystem uses it for
// large-answer feedback.
func (db *Database) Stats() map[string]int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[string]int, len(db.tables))
	for _, t := range db.tables {
		out[t.rel.Name] = t.rows
	}
	return out
}

// DistinctCount returns the number of distinct non-NULL values in the named
// attribute, used by cardinality estimation. It is O(1): the count is read
// from the incrementally maintained table statistics.
func (db *Database) DistinctCount(relName, attr string) (int, error) {
	tbl := db.Table(relName)
	if tbl == nil {
		return 0, fmt.Errorf("storage: unknown relation %q", relName)
	}
	p := tbl.rel.AttrIndex(attr)
	if p < 0 {
		return 0, fmt.Errorf("storage: unknown attribute %s.%s", relName, attr)
	}
	return len(tbl.stats.attrs[p].counts), nil
}
