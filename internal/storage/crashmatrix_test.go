package storage

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/value"
	"repro/internal/wal"
)

// The crash matrix is the differential proof of the recovery contract: a
// randomized (but seeded, hence deterministic) DML workload runs against a
// durable database while a plain in-memory oracle applies the same
// statements. The durable run's WAL is then cut at every record boundary, at
// sampled intra-record offsets, and hit with bit flips — and every mutilated
// disk must recover, without error, to byte-identical observable state
// (CSV dump of every table + planner statistics) with the oracle as of the
// last committed statement the surviving prefix holds.

// matrixStep is one workload statement. Steps tagged checkpoint run only on
// the durable database (the oracle has no log to fold).
type matrixStep struct {
	apply      func(t *testing.T, db *Database)
	checkpoint bool
}

// matrixWorkload builds the deterministic statement sequence. Int values
// stay in narrow ranges so the frame-of-reference encoding stays active
// through checkpoints, and several statements fail on purpose (duplicate
// keys, bad CSV) to exercise the no-op-commits-nothing path.
func matrixWorkload(rng *rand.Rand) []matrixStep {
	var steps []matrixStep
	add := func(f func(t *testing.T, db *Database)) {
		steps = append(steps, matrixStep{apply: f})
	}
	names := []string{"lang", "allen", "besson", "varda", "kubrick"}
	nextDir, nextMovie, nextRating := 0, 0, 0

	for i := 0; i < 10; i++ {
		id, name := nextDir, names[rng.Intn(len(names))]
		nullDate := rng.Intn(3) == 0
		day := int64(rng.Intn(200) - 100)
		nextDir++
		add(func(t *testing.T, db *Database) {
			bdate := value.NewNull()
			if !nullDate {
				bdate = value.NewDateDays(day)
			}
			if err := db.Insert("DIRECTOR", Tuple{value.NewInt(int64(id)), value.NewText(name), bdate}); err != nil {
				t.Fatalf("insert director %d: %v", id, err)
			}
		})
	}
	for i := 0; i < 25; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // movie inserts, batched three at a time
			base, did, year := nextMovie, rng.Intn(10), 1960+rng.Intn(60)
			nullTitle := rng.Intn(4) == 0
			nextMovie += 3
			add(func(t *testing.T, db *Database) {
				db.BeginBatch()
				for j := 0; j < 3; j++ {
					title := value.NewNull()
					if !nullTitle {
						title = value.NewText(fmt.Sprintf("film-%d", (base+j)%9))
					}
					if err := db.Insert("MOVIES", Tuple{
						value.NewInt(int64(base + j)), title,
						value.NewInt(int64(year + j)), value.NewInt(int64(did)),
					}); err != nil {
						t.Fatalf("insert movie %d: %v", base+j, err)
					}
				}
				if err := db.CommitBatch(); err != nil {
					t.Fatalf("commit movies: %v", err)
				}
			})
		case 4: // rating insert with awkward floats
			id := nextRating
			score := []float64{0.5, -1.25, 3e300, 0}[rng.Intn(4)]
			fresh := rng.Intn(2) == 0
			nextRating++
			add(func(t *testing.T, db *Database) {
				if err := db.Insert("RATINGS", Tuple{
					value.NewInt(int64(id)), value.NewFloat(score),
					value.NewBool(fresh), value.NewText(fmt.Sprintf("r%d", id%5)),
				}); err != nil {
					t.Fatalf("insert rating: %v", err)
				}
			})
		case 5: // delete by year band
			lo := 1960 + rng.Intn(60)
			add(func(t *testing.T, db *Database) {
				if _, err := db.Delete("MOVIES", func(tup Tuple) bool {
					return !tup[2].IsNull() && tup[2].Int() >= int64(lo) && tup[2].Int() < int64(lo+4)
				}); err != nil {
					t.Fatalf("delete: %v", err)
				}
			})
		case 6: // update titles
			mod := int64(2 + rng.Intn(4))
			add(func(t *testing.T, db *Database) {
				if _, err := db.Update("MOVIES",
					func(tup Tuple) bool { return tup[0].Int()%mod == 0 },
					func(tup Tuple) Tuple {
						if tup[1].IsNull() {
							tup[1] = value.NewText("untitled")
						} else {
							tup[1] = value.NewText("re-" + tup[1].Text())
						}
						return tup
					}); err != nil {
					t.Fatalf("update: %v", err)
				}
			})
		case 7: // duplicate-key insert: fails, commits nothing
			add(func(t *testing.T, db *Database) {
				if err := db.Insert("DIRECTOR", Tuple{value.NewInt(0), value.NewText("dup"), value.NewNull()}); err == nil {
					t.Fatal("duplicate director accepted")
				}
			})
		case 8: // CSV load; every other one fails and must roll back
			base := nextMovie
			nextMovie += 2
			fail := rng.Intn(2) == 0
			add(func(t *testing.T, db *Database) {
				csv := fmt.Sprintf("id,title,year,did\n%d,csv-a,1970,1\n%d,csv-b,1971,2\n", base, base+1)
				if fail {
					csv += fmt.Sprintf("%d,csv-dup,1972,3\n", base) // duplicate pk
				}
				n, err := db.LoadCSV("MOVIES", strings.NewReader(csv))
				if fail && (err == nil || n != 0) {
					t.Fatalf("failing CSV: n=%d err=%v", n, err)
				}
				if !fail && (err != nil || n != 2) {
					t.Fatalf("good CSV: n=%d err=%v", n, err)
				}
			})
		case 9: // update that trips NOT NULL midway: partial apply
			add(func(t *testing.T, db *Database) {
				hit := 0
				_, err := db.Update("DIRECTOR",
					func(tup Tuple) bool { return tup[0].Int()%4 == 1 },
					func(tup Tuple) Tuple {
						hit++
						if hit == 3 {
							tup[1] = value.NewNull() // violates NOT NULL
						} else {
							tup[1] = value.NewText(tup[1].Text() + "+")
						}
						return tup
					})
				if hit >= 3 && err == nil {
					t.Fatal("NOT NULL violation accepted")
				}
			})
		}
	}
	// One secondary index mid-stream, then a little more churn after it.
	steps = append(steps[:len(steps)/2],
		append([]matrixStep{{apply: func(t *testing.T, db *Database) {
			if err := db.Table("MOVIES").CreateIndex("movies_did", "did"); err != nil {
				t.Fatalf("create index: %v", err)
			}
		}}}, steps[len(steps)/2:]...)...)
	return steps
}

// matrixPrint is the observable surface the matrix compares: full contents
// plus planner statistics. (Zone internals are compared by the round-trip
// tests; here only observable equivalence matters.)
func matrixPrint(t *testing.T, db *Database) string {
	return dumpAll(t, db) + statsAll(t, db)
}

func runCrashMatrix(t *testing.T, checkpointAt map[int]bool) {
	rng := rand.New(rand.NewSource(42))
	steps := matrixWorkload(rng)
	for i := range steps {
		if checkpointAt[i] {
			steps[i].checkpoint = true
		}
	}

	fs := wal.NewMemFS()
	live := newDurDB(t)
	if _, err := live.EnableDurability(fs, DurableOptions{CheckpointBytes: -1}); err != nil {
		t.Fatal(err)
	}
	oracle := newDurDB(t)

	// Run the workload on both; record, after every step, the oracle's
	// fingerprint and the durable database's committed sequence number.
	type snap struct {
		seq uint64
		fp  string
	}
	st, _ := live.DurabilityStats()
	snaps := []snap{{seq: st.LastSeq, fp: matrixPrint(t, oracle)}}
	for i, step := range steps {
		if step.checkpoint {
			if err := live.Checkpoint(); err != nil {
				t.Fatalf("checkpoint at step %d: %v", i, err)
			}
		} else {
			step.apply(t, live)
			step.apply(t, oracle)
		}
		st, _ := live.DurabilityStats()
		snaps = append(snaps, snap{seq: st.LastSeq, fp: matrixPrint(t, oracle)})
	}
	if got, want := matrixPrint(t, live), snaps[len(snaps)-1].fp; got != want {
		t.Fatalf("live and oracle diverge before any crash:\n--- oracle\n%s\n--- live\n%s", want, got)
	}

	// fpAtSeq returns the oracle fingerprint as of committed sequence s.
	fpAtSeq := func(s uint64) string {
		fp := snaps[0].fp
		for _, sn := range snaps {
			if sn.seq <= s {
				fp = sn.fp
			} else {
				break
			}
		}
		return fp
	}

	data := fs.Bytes(WALFileName)
	records, tail := wal.Scan(data)
	if tail != nil {
		t.Fatalf("live log has a tail: %+v", tail)
	}
	if len(records) == 0 {
		t.Fatal("workload committed nothing")
	}
	seqOf := func(rec wal.Record) uint64 {
		d := &walDecoder{buf: rec.Payload}
		s := d.uvarint()
		if d.err != nil {
			t.Fatalf("record seq: %v", d.err)
		}
		return s
	}
	// floorSeq is the sequence covered by the checkpoint on disk (what a
	// zero-record log recovers to).
	floorSeq := seqOf(records[0]) - 1

	recoverTo := func(disk *wal.MemFS) (*Database, *RecoveryReport) {
		t.Helper()
		db := newDurDB(t)
		report, err := db.EnableDurability(disk, DurableOptions{CheckpointBytes: -1})
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		return db, report
	}

	// Cut at every record boundary and at sampled intra-record offsets.
	cuts := []struct {
		at  int
		seq uint64 // highest committed sequence surviving the cut
	}{{0, floorSeq}}
	prevSeq := floorSeq
	for _, rec := range records {
		s := seqOf(rec)
		for _, at := range []int{rec.Off + 4, (rec.Off + rec.End) / 2, rec.End - 1} {
			if at > rec.Off {
				cuts = append(cuts, struct {
					at  int
					seq uint64
				}{at, prevSeq})
			}
		}
		cuts = append(cuts, struct {
			at  int
			seq uint64
		}{rec.End, s})
		prevSeq = s
	}
	for _, cut := range cuts {
		disk := fs.Clone()
		disk.Truncate(WALFileName, cut.at)
		db, report := recoverTo(disk)
		if got, want := matrixPrint(t, db), fpAtSeq(cut.seq); got != want {
			t.Fatalf("cut at byte %d (seq %d): recovered state diverges from oracle\n--- want\n%s\n--- got\n%s",
				cut.at, cut.seq, want, got)
		}
		if cut.at < len(data) && cut.at > 0 {
			isBoundary := false
			for _, rec := range records {
				if cut.at == rec.End {
					isBoundary = true
				}
			}
			if !isBoundary && report.Clean() {
				t.Errorf("cut at byte %d inside a record reported clean", cut.at)
			}
		}
	}

	// Bit flips: one per record, at a payload byte — the flipped record and
	// everything after it quarantine; the prefix must match the oracle.
	prevSeq = floorSeq
	for i, rec := range records {
		disk := fs.Clone()
		disk.FlipBit(WALFileName, rec.Off+8+(i%len(rec.Payload)), 0x40)
		db, report := recoverTo(disk)
		if report.Clean() {
			t.Errorf("bit flip in record %d reported clean", i)
		}
		if got, want := matrixPrint(t, db), fpAtSeq(prevSeq); got != want {
			t.Fatalf("bit flip in record %d: recovered state diverges\n--- want\n%s\n--- got\n%s", i, want, got)
		}
		if report.LostBatches < 1 {
			t.Errorf("bit flip in record %d: lost=%d", i, report.LostBatches)
		}
		prevSeq = seqOf(rec)
	}
}

func TestCrashMatrix(t *testing.T) {
	runCrashMatrix(t, nil)
}

func TestCrashMatrixWithCheckpoints(t *testing.T) {
	runCrashMatrix(t, map[int]bool{12: true, 24: true})
}
