package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"repro/internal/value"
	"repro/internal/wal"
)

// newReplicatedPair builds a durable primary (MemFS) with its commit sink
// collecting frames, plus an empty in-memory follower over the same schema.
func newReplicatedPair(t *testing.T) (primary *Database, follower *Database, frames *[]CommitFrame) {
	t.Helper()
	primary = newDurDB(t)
	if _, err := primary.EnableDurability(wal.NewMemFS(), DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	collected := &[]CommitFrame{}
	if err := primary.SetCommitSink(func(seq uint64, record []byte) {
		*collected = append(*collected, CommitFrame{Seq: seq, Record: append([]byte(nil), record...)})
	}); err != nil {
		t.Fatal(err)
	}
	follower = newDurDB(t)
	follower.SetReadOnly(true)
	return primary, follower, collected
}

func insDirector(t *testing.T, db *Database, id int) {
	t.Helper()
	ins(t, db, "DIRECTOR", value.NewInt(int64(id)), value.NewText(fmt.Sprintf("d-%d", id)), value.NewNull())
}

// TestCommitSinkStreamsRecords pins the sink contract: one call per commit,
// in sequence order, carrying exactly the record payload the WAL framed.
func TestCommitSinkStreamsRecords(t *testing.T) {
	primary, _, frames := newReplicatedPair(t)
	for i := 0; i < 5; i++ {
		insDirector(t, primary, i)
	}
	if len(*frames) != 5 {
		t.Fatalf("sink saw %d commits, want 5", len(*frames))
	}
	for i, fr := range *frames {
		if fr.Seq != uint64(i+1) {
			t.Fatalf("frame %d has seq %d, want %d", i, fr.Seq, i+1)
		}
		seq, ok := RecordSeq(fr.Record)
		if !ok || seq != fr.Seq {
			t.Fatalf("frame %d: payload seq %d (ok=%v), want %d", i, seq, ok, fr.Seq)
		}
	}
	// The sink stream must be byte-identical to the fsynced log.
	_, diskFrames, _, err := primary.ReplicationBacklog(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(diskFrames) != len(*frames) {
		t.Fatalf("disk backlog has %d frames, sink saw %d", len(diskFrames), len(*frames))
	}
	for i := range diskFrames {
		if diskFrames[i].Seq != (*frames)[i].Seq || string(diskFrames[i].Record) != string((*frames)[i].Record) {
			t.Fatalf("frame %d: disk and sink disagree", i)
		}
	}
}

// TestApplyReplicatedRecord pins the follower apply path: shipped records
// replay into an identical database, one published version per record at the
// record's sequence, while local writes stay refused.
func TestApplyReplicatedRecord(t *testing.T) {
	primary, follower, frames := newReplicatedPair(t)
	if err := follower.Insert("DIRECTOR", Tuple{value.NewInt(99), value.NewText("local"), value.NewNull()}); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("local insert on follower: %v, want ErrReadOnlyReplica", err)
	}
	for i := 0; i < 4; i++ {
		insDirector(t, primary, i)
	}
	if _, err := primary.Delete("DIRECTOR", func(tup Tuple) bool { return tup[0].Int() == 2 }); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Update("DIRECTOR", func(tup Tuple) bool { return tup[0].Int() == 1 },
		func(tup Tuple) Tuple {
			out := append(Tuple(nil), tup...)
			out[1] = value.NewText("renamed")
			return out
		}); err != nil {
		t.Fatal(err)
	}
	published := follower.Published()
	for _, fr := range *frames {
		seq, _, err := follower.ApplyReplicatedRecord(fr.Record)
		if err != nil {
			t.Fatalf("apply seq %d: %v", fr.Seq, err)
		}
		if seq != fr.Seq {
			t.Fatalf("apply decoded seq %d, want %d", seq, fr.Seq)
		}
		if got := follower.Snapshot().Seq(); got != fr.Seq {
			t.Fatalf("follower snapshot at seq %d after applying %d", got, fr.Seq)
		}
	}
	if got := follower.Published() - published; got != uint64(len(*frames)) {
		t.Fatalf("follower published %d versions for %d records", got, len(*frames))
	}
	if got, want := snapDump(follower.Snapshot()), snapDump(primary.Snapshot()); got != want {
		t.Fatalf("follower diverged from primary:\n%s\n----\n%s", got, want)
	}
	if err := follower.Insert("DIRECTOR", Tuple{value.NewInt(99), value.NewText("local"), value.NewNull()}); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("local insert after applies: %v, want ErrReadOnlyReplica", err)
	}
}

// TestApplyReplicatedRecordPartialFailure pins record atomicity on the
// follower: a record that fails midway publishes nothing — readers never see
// half a statement batch, they see the last fully applied sequence.
func TestApplyReplicatedRecordPartialFailure(t *testing.T) {
	primary, follower, frames := newReplicatedPair(t)
	insDirector(t, primary, 1)
	insDirector(t, primary, 2)
	first, second := (*frames)[0], (*frames)[1]
	if _, _, err := follower.ApplyReplicatedRecord(first.Record); err != nil {
		t.Fatal(err)
	}
	// Craft a record whose first op inserts id 2 (fresh — it applies) and
	// whose second op inserts id 2 again (primary-key violation): the apply
	// fails midway with one row already in the live tables.
	_, n := binary.Uvarint(second.Record)
	_, n2 := binary.Uvarint(second.Record[n:])
	ops := second.Record[n+n2:]
	bad := binary.AppendUvarint(nil, second.Seq)
	bad = binary.AppendUvarint(bad, 2)
	bad = append(bad, ops...)
	bad = append(bad, ops...)
	before := snapDump(follower.Snapshot())
	seq, _, err := follower.ApplyReplicatedRecord(bad)
	if err == nil {
		t.Fatal("duplicate-key record applied cleanly")
	}
	if seq != second.Seq {
		t.Fatalf("decoded seq %d, want %d", seq, second.Seq)
	}
	if got := snapDump(follower.Snapshot()); got != before {
		t.Fatalf("failed record leaked into a published version:\n%s", got)
	}
	if got := follower.Snapshot().Seq(); got != first.Seq {
		t.Fatalf("follower snapshot moved to seq %d after a failed apply", got)
	}
}

// TestReplicationBacklog pins the catch-up read: below the checkpoint floor
// the backlog re-seeds from the segment, above it ships log records, and the
// result always reconstructs the primary byte-for-byte.
func TestReplicationBacklog(t *testing.T) {
	primary, follower, _ := newReplicatedPair(t)
	for i := 0; i < 3; i++ {
		insDirector(t, primary, i)
	}
	// No checkpoint yet beyond the adopting one (floor 0): a follower at 0
	// needs no segment, only records.
	ck, frames, last, err := primary.ReplicationBacklog(0)
	if err != nil {
		t.Fatal(err)
	}
	if ck != nil {
		t.Fatalf("backlog above the floor shipped a checkpoint")
	}
	if len(frames) != 3 || last != 3 {
		t.Fatalf("backlog: %d frames to %d, want 3 to 3", len(frames), last)
	}
	// Rotate the log: records 1..3 now live only in the checkpoint.
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 5; i++ {
		insDirector(t, primary, i)
	}
	ck, frames, last, err = primary.ReplicationBacklog(0)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil {
		t.Fatal("backlog below the floor must ship the checkpoint")
	}
	if len(frames) != 2 || last != 5 {
		t.Fatalf("backlog: %d frames to %d, want 2 to 5", len(frames), last)
	}
	floor, rows, err := follower.LoadReplicatedCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	if floor != 3 || rows != 3 {
		t.Fatalf("checkpoint load: floor %d rows %d, want 3 and 3", floor, rows)
	}
	if got := follower.Snapshot().Seq(); got != 3 {
		t.Fatalf("follower snapshot at seq %d after re-seed, want 3", got)
	}
	for _, fr := range frames {
		if _, _, err := follower.ApplyReplicatedRecord(fr.Record); err != nil {
			t.Fatalf("apply seq %d: %v", fr.Seq, err)
		}
	}
	if got, want := snapDump(follower.Snapshot()), snapDump(primary.Snapshot()); got != want {
		t.Fatalf("catch-up diverged:\n%s\n----\n%s", got, want)
	}
	// A caught-up follower asking again gets nothing.
	ck, frames, last, err = primary.ReplicationBacklog(5)
	if err != nil || ck != nil || len(frames) != 0 || last != 5 {
		t.Fatalf("caught-up backlog: ck=%v frames=%d last=%d err=%v", ck != nil, len(frames), last, err)
	}
}

// TestRecoveryReportSeqRange pins the recovered sequence range satellite:
// recovery reports the checkpoint floor and the replayed span.
func TestRecoveryReportSeqRange(t *testing.T) {
	fs := wal.NewMemFS()
	db := newDurDB(t)
	if _, err := db.EnableDurability(fs, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		insDirector(t, db, i)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 7; i++ {
		insDirector(t, db, i)
	}
	if err := db.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	re := newDurDB(t)
	report, err := re.EnableDurability(fs, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.CheckpointSeq != 3 {
		t.Fatalf("CheckpointSeq %d, want 3", report.CheckpointSeq)
	}
	if report.FirstSeq != 4 || report.LastSeq != 7 {
		t.Fatalf("seq range %d..%d, want 4..7", report.FirstSeq, report.LastSeq)
	}
	if got := re.Snapshot().Seq(); got != 7 {
		t.Fatalf("recovered snapshot at %d, want 7", got)
	}
}
