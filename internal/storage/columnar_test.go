package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/value"
)

// This file proves the columnar Table is observably identical to a plain
// row store: a randomized Insert/Delete/Update/LoadCSV/index workload runs
// against the real Database while the test maintains its own []Tuple oracle,
// and after every operation Scan, LookupPK, LookupIndex, and DumpCSV must
// agree with the oracle exactly. A second test cross-checks the incremental
// statistics against a from-scratch rebuild after the same kind of workload.

func columnarTestSchema() *catalog.Schema {
	s := catalog.NewSchema("colfuzz")
	if err := s.AddRelation(&catalog.Relation{
		Name: "T",
		Attributes: []*catalog.Attribute{
			{Name: "id", Type: catalog.Int, NotNull: true},
			{Name: "n", Type: catalog.Int},
			{Name: "f", Type: catalog.Float},
			{Name: "s", Type: catalog.Text},
			{Name: "d", Type: catalog.Date},
			{Name: "b", Type: catalog.Bool},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		panic(err)
	}
	return s
}

// randVal builds a random value for attribute position pos (NULL-heavy for
// every nullable attribute).
func randVal(rng *rand.Rand, pos int, nextID *int64) value.Value {
	if pos == 0 {
		*nextID++
		return value.NewInt(*nextID)
	}
	if rng.Intn(4) == 0 {
		return value.NewNull()
	}
	switch pos {
	case 1:
		return value.NewInt(int64(rng.Intn(7)))
	case 2:
		return value.NewFloat(float64(rng.Intn(10)) / 4)
	case 3:
		return value.NewText(fmt.Sprintf("w-%d", rng.Intn(5)))
	case 4:
		return value.NewDateDays(int64(rng.Intn(50) - 25))
	default:
		return value.NewBool(rng.Intn(2) == 0)
	}
}

func tuplesEqual(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].IsNull() != b[i].IsNull() {
			return false
		}
		if !a[i].IsNull() && !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// checkAgainstOracle compares every observable table surface with the
// oracle's rows.
func checkAgainstOracle(t *testing.T, db *Database, oracle []Tuple, step string) {
	t.Helper()
	tbl := db.Table("T")
	if tbl.Len() != len(oracle) {
		t.Fatalf("%s: Len = %d, oracle %d", step, tbl.Len(), len(oracle))
	}
	// Scan order and contents.
	i := 0
	tbl.Scan(func(tup Tuple) bool {
		if !tuplesEqual(tup, oracle[i]) {
			t.Fatalf("%s: row %d = %s, oracle %s", step, i, tup, oracle[i])
		}
		i++
		return true
	})
	if i != len(oracle) {
		t.Fatalf("%s: Scan visited %d rows, oracle %d", step, i, len(oracle))
	}
	// LookupPK on every oracle row plus a missing key.
	for _, row := range oracle {
		got, ok := tbl.LookupPK(Tuple{row[0]})
		if !ok || !tuplesEqual(got, row) {
			t.Fatalf("%s: LookupPK(%s) = %v (ok=%v), oracle %s", step, row[0], got, ok, row)
		}
	}
	if _, ok := tbl.LookupPK(Tuple{value.NewInt(-999)}); ok {
		t.Fatalf("%s: LookupPK found a phantom row", step)
	}
	// LookupIndex over by_n (NULL keys never match; order is insertion order).
	if tbl.Index("by_n") != nil {
		for k := int64(0); k < 7; k++ {
			key := value.NewInt(k)
			got, err := tbl.LookupIndex("by_n", key)
			if err != nil {
				t.Fatalf("%s: LookupIndex: %v", step, err)
			}
			var want []Tuple
			for _, row := range oracle {
				if !row[1].IsNull() && row[1].Equal(key) {
					want = append(want, row)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%s: LookupIndex(%d) = %d rows, oracle %d", step, k, len(got), len(want))
			}
			for j := range got {
				if !tuplesEqual(got[j], want[j]) {
					t.Fatalf("%s: LookupIndex(%d)[%d] = %s, oracle %s", step, k, j, got[j], want[j])
				}
			}
		}
	}
	// DumpCSV byte-for-byte against a dump rendered from the oracle.
	var gotCSV bytes.Buffer
	if err := db.DumpCSV("T", &gotCSV); err != nil {
		t.Fatalf("%s: DumpCSV: %v", step, err)
	}
	var wantCSV strings.Builder
	wantCSV.WriteString("id,n,f,s,d,b\n")
	for _, row := range oracle {
		cells := make([]string, len(row))
		for j, v := range row {
			if !v.IsNull() {
				cells[j] = v.String()
			}
		}
		wantCSV.WriteString(strings.Join(cells, ","))
		wantCSV.WriteByte('\n')
	}
	if gotCSV.String() != wantCSV.String() {
		t.Fatalf("%s: DumpCSV mismatch\ngot:\n%s\nwant:\n%s", step, gotCSV.String(), wantCSV.String())
	}
}

// TestColumnarDifferentialFuzz runs the randomized workload. The oracle
// mirrors only operations the database accepted, so constraint rejections
// (duplicate PKs) are exercised without duplicating validation logic.
func TestColumnarDifferentialFuzz(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			db, err := NewDatabase(columnarTestSchema())
			if err != nil {
				t.Fatal(err)
			}
			if err := db.Table("T").CreateIndex("by_n", "n"); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			var oracle []Tuple
			var nextID int64
			width := 6
			for op := 0; op < 120; op++ {
				switch choice := rng.Intn(10); {
				case choice < 5: // insert
					tup := make(Tuple, width)
					for p := 0; p < width; p++ {
						tup[p] = randVal(rng, p, &nextID)
					}
					if rng.Intn(8) == 0 && len(oracle) > 0 {
						// Force a duplicate-PK rejection.
						tup[0] = oracle[rng.Intn(len(oracle))][0]
					}
					before := tup.Clone()
					if err := db.Insert("T", tup); err == nil {
						oracle = append(oracle, tup.Clone())
					} else if len(oracle) == 0 {
						t.Fatalf("insert %s rejected on empty table: %v", before, err)
					}
				case choice < 6: // insert via LoadCSV (shuffled header)
					rows := 1 + rng.Intn(3)
					var csvText strings.Builder
					csvText.WriteString("n,id,s\n")
					var loaded []Tuple
					for r := 0; r < rows; r++ {
						nextID++
						n := rng.Intn(7)
						s := fmt.Sprintf("w-%d", rng.Intn(5))
						csvText.WriteString(fmt.Sprintf("%d,%d,%s\n", n, nextID, s))
						loaded = append(loaded, Tuple{
							value.NewInt(nextID), value.NewInt(int64(n)), value.NewNull(),
							value.NewText(s), value.NewNull(), value.NewNull(),
						})
					}
					n, err := db.LoadCSV("T", strings.NewReader(csvText.String()))
					if err != nil {
						t.Fatalf("LoadCSV: %v", err)
					}
					if n != rows {
						t.Fatalf("LoadCSV loaded %d rows, want %d", n, rows)
					}
					oracle = append(oracle, loaded...)
				case choice < 8: // delete by predicate
					k := int64(rng.Intn(7))
					pred := func(tup Tuple) bool {
						return !tup[1].IsNull() && tup[1].Equal(value.NewInt(k))
					}
					removed, err := db.Delete("T", pred)
					if err != nil {
						t.Fatalf("Delete: %v", err)
					}
					kept := oracle[:0]
					want := 0
					for _, row := range oracle {
						if pred(row) {
							want++
						} else {
							kept = append(kept, row)
						}
					}
					oracle = kept
					if removed != want {
						t.Fatalf("Delete removed %d, oracle %d", removed, want)
					}
				default: // update a nullable attribute
					k := int64(rng.Intn(7))
					newS := fmt.Sprintf("w-%d", rng.Intn(5))
					pred := func(tup Tuple) bool {
						return !tup[1].IsNull() && tup[1].Equal(value.NewInt(k))
					}
					fn := func(tup Tuple) Tuple {
						tup[3] = value.NewText(newS)
						tup[1] = value.NewInt(k + 1)
						return tup
					}
					updated, err := db.Update("T", pred, fn)
					if err != nil {
						t.Fatalf("Update: %v", err)
					}
					want := 0
					for i, row := range oracle {
						if pred(row) {
							oracle[i] = fn(row.Clone())
							want++
						}
					}
					if updated != want {
						t.Fatalf("Update touched %d, oracle %d", updated, want)
					}
				}
				checkAgainstOracle(t, db, oracle, fmt.Sprintf("op %d", op))
			}
		})
	}
}

// TestStatsConsistencyAfterDML cross-checks the incrementally maintained
// statistics (counts decremented on Delete/Update, bounds rescanned only on
// invalidation) against a from-scratch recomputation from the visible rows.
func TestStatsConsistencyAfterDML(t *testing.T) {
	db, err := NewDatabase(columnarTestSchema())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	var nextID int64
	width := 6
	verify := func(step string) {
		t.Helper()
		tbl := db.Table("T")
		got := tbl.Stats()
		// Recompute from scratch off the Scan surface.
		want := TableStats{Rows: tbl.Len(), Attrs: make([]AttrStats, width)}
		distinct := make([]map[string]bool, width)
		for p := range distinct {
			distinct[p] = map[string]bool{}
		}
		tbl.Scan(func(tup Tuple) bool {
			for p, v := range tup {
				if v.IsNull() {
					continue
				}
				a := &want.Attrs[p]
				a.NonNull++
				distinct[p][string(v.AppendKey(nil))] = true
				if a.Min.IsNull() {
					a.Min, a.Max = v, v
					continue
				}
				if c, err := v.Compare(a.Min); err == nil && c < 0 {
					a.Min = v
				}
				if c, err := v.Compare(a.Max); err == nil && c > 0 {
					a.Max = v
				}
			}
			return true
		})
		for p := range distinct {
			want.Attrs[p].Distinct = len(distinct[p])
		}
		if got.Rows != want.Rows {
			t.Fatalf("%s: Rows = %d, want %d", step, got.Rows, want.Rows)
		}
		for p := 0; p < width; p++ {
			g, w := got.Attrs[p], want.Attrs[p]
			if g.NonNull != w.NonNull || g.Distinct != w.Distinct {
				t.Fatalf("%s: attr %d nonNull/distinct = %d/%d, want %d/%d",
					step, p, g.NonNull, g.Distinct, w.NonNull, w.Distinct)
			}
			if g.Min.IsNull() != w.Min.IsNull() || (!g.Min.IsNull() && !g.Min.Equal(w.Min)) {
				t.Fatalf("%s: attr %d min = %s, want %s", step, p, g.Min, w.Min)
			}
			if g.Max.IsNull() != w.Max.IsNull() || (!g.Max.IsNull() && !g.Max.Equal(w.Max)) {
				t.Fatalf("%s: attr %d max = %s, want %s", step, p, g.Max, w.Max)
			}
		}
	}
	for op := 0; op < 150; op++ {
		switch choice := rng.Intn(10); {
		case choice < 6:
			tup := make(Tuple, width)
			for p := 0; p < width; p++ {
				tup[p] = randVal(rng, p, &nextID)
			}
			if err := db.Insert("T", tup); err != nil {
				t.Fatalf("insert: %v", err)
			}
		case choice < 8:
			k := int64(rng.Intn(7))
			if _, err := db.Delete("T", func(tup Tuple) bool {
				return !tup[1].IsNull() && tup[1].Equal(value.NewInt(k))
			}); err != nil {
				t.Fatalf("delete: %v", err)
			}
		default:
			k := int64(rng.Intn(7))
			nf := value.NewFloat(float64(rng.Intn(12)) / 4)
			if _, err := db.Update("T", func(tup Tuple) bool {
				return !tup[1].IsNull() && tup[1].Equal(value.NewInt(k))
			}, func(tup Tuple) Tuple {
				tup[2] = nf
				if rng.Intn(3) == 0 {
					tup[4] = value.NewNull()
				}
				return tup
			}); err != nil {
				t.Fatalf("update: %v", err)
			}
		}
		verify(fmt.Sprintf("op %d", op))
	}
}
