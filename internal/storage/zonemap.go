package storage

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/value"
)

// This file adds per-morsel zone maps and lightweight encodings on top of the
// column vectors. Every ZoneRows-sized range of a column keeps a zone: its
// null count, typed min/max bounds over the comparable values, and whether the
// range is sorted — enough for a predicate to decide a whole morsel without
// touching the payload vector. Zones are extended incrementally on Insert
// (appendVal) and rebuilt only from the first dirty row after Delete/Update,
// so a write never pays more than the suffix it disturbed.
//
// Two encodings ride on the same maintenance pass:
//
//   - Frame-of-reference for Int/Date columns: when every zone's value span
//     fits in a byte, the column keeps a per-zone base plus one uint8 delta
//     per row. Range predicates then stream 1/8th of the bytes. The encoding
//     drops out permanently the first time a zone's span overflows — sorted
//     or clustered columns keep it, random wide columns shed it immediately.
//     A zone whose values are all equal (min == max) is the degenerate
//     run-length case: its deltas are all zero and bounds alone decide every
//     predicate.
//
//   - An opt-in sorted dictionary for Text columns (EnableSortedDict): the
//     dictionary keeps a code->rank table in string sort order, so range and
//     LIKE-prefix predicates compare integer ranks instead of strings.

const (
	// ZoneShift is log2(ZoneRows).
	ZoneShift = 12
	// ZoneRows is the zone-map granularity: one zone summarizes one
	// morsel-sized range of rows. planner.MorselRows aliases this constant so
	// morsel-parallel scans and zone maps always agree on the unit.
	ZoneRows = 1 << ZoneShift

	// ZoneMask extracts a row's offset within its zone; the engine indexes
	// frame-of-reference delta chunks with d8[i>>ZoneShift][i&ZoneMask].
	ZoneMask = ZoneRows - 1
)

// zone summarizes rows [z*ZoneRows, (z+1)*ZoneRows) of one column. Bounds
// cover the comparable non-NULL values: NaN never enters minF/maxF (it is
// incomparable), so a float zone flags hasNaN and predicates treat it as
// undecidable instead.
type zone struct {
	nulls   int32
	lastRow int32 // last bounded row, for incremental sortedness; -1 if none
	has     bool  // any bounded (non-NULL, non-NaN) value
	sorted  bool  // bounded values non-decreasing in row order
	hasNaN  bool
	minI    int64 // Int/Date bounds; Bool bounds as 0/1
	maxI    int64
	minF    float64
	maxF    float64
	minS    string // Text bounds (shared dictionary strings)
	maxS    string
}

// zoneExtend folds the just-appended row into its zone, growing the zone
// slice (and the frame-of-reference vectors) at morsel boundaries. Called
// with the payload and null bit already stored.
func (c *column) zoneExtend(row int) {
	z := row >> ZoneShift
	if z == len(c.zones) {
		c.zones = append(c.zones, zone{lastRow: -1})
		if !c.forOff {
			c.fb = append(c.fb, 0)
			c.d8 = append(c.d8, nil)
			c.d8Cow = false // a fresh chunk is writer-private
		}
	}
	c.zrows = row + 1
	zn := &c.zones[z]
	if c.nulls.get(row) {
		zn.nulls++
		if !c.forOff {
			c.d8[z] = append(c.d8[z], 0) // placeholder; never read for NULL rows
		}
		return
	}
	switch c.kind {
	case value.Int, value.Date:
		x := c.ints[row]
		if !zn.has {
			zn.has, zn.sorted = true, true
			zn.minI, zn.maxI = x, x
			if !c.forOff {
				c.fb[z] = x
				c.d8[z] = append(c.d8[z], 0)
			}
		} else {
			if x < c.ints[zn.lastRow] {
				zn.sorted = false
			}
			if x < zn.minI {
				zn.minI = x
			} else if x > zn.maxI {
				zn.maxI = x
			}
			if !c.forOff {
				c.forAppend(z, row, x)
			}
		}
	case value.Float:
		x := c.flts[row]
		if math.IsNaN(x) {
			zn.hasNaN = true
			zn.sorted = false
			return
		}
		if !zn.has {
			zn.has, zn.sorted = true, true
			zn.minF, zn.maxF = x, x
		} else {
			if x < c.flts[zn.lastRow] {
				zn.sorted = false
			}
			if x < zn.minF {
				zn.minF = x
			} else if x > zn.maxF {
				zn.maxF = x
			}
		}
	case value.Text:
		s := c.dict.strs[c.codes[row]]
		if !zn.has {
			zn.has, zn.sorted = true, true
			zn.minS, zn.maxS = s, s
		} else {
			if s < c.dict.strs[c.codes[zn.lastRow]] {
				zn.sorted = false
			}
			if s < zn.minS {
				zn.minS = s
			} else if s > zn.maxS {
				zn.maxS = s
			}
		}
	case value.Bool:
		var x int64
		if c.bls[row] {
			x = 1
		}
		if !zn.has {
			zn.has, zn.sorted = true, true
			zn.minI, zn.maxI = x, x
		} else {
			prev := int64(0)
			if c.bls[zn.lastRow] {
				prev = 1
			}
			if x < prev {
				zn.sorted = false
			}
			if x < zn.minI {
				zn.minI = x
			} else if x > zn.maxI {
				zn.maxI = x
			}
		}
	}
	zn.lastRow = int32(row)
}

// forAppend extends the frame-of-reference deltas with x. The base is
// maintained as the zone minimum: a value below it rebases the zone's deltas
// (bounded by the zone size), a span past a byte drops the encoding for good.
// A rebase is the only in-place chunk mutation, so it is the one spot that
// honors the copy-on-write flag a snapshot freeze leaves behind.
func (c *column) forAppend(z, row int, x int64) {
	base := c.fb[z]
	if d := x - base; d >= 0 && d <= 255 {
		c.d8[z] = append(c.d8[z], uint8(d))
		return
	}
	zn := &c.zones[z]
	span := zn.maxI - zn.minI // bounds already include x
	if span < 0 || span > 255 {
		c.forDrop()
		return
	}
	if c.d8Cow {
		// The chunk is shared with a frozen snapshot (which also keeps its own
		// copy of the old base); shift a private clone instead.
		c.d8[z] = append([]uint8(nil), c.d8[z]...)
		c.d8Cow = false
	}
	// x became the new minimum: shift the zone's deltas onto the new base.
	shift := uint8(base - zn.minI)
	chunk := c.d8[z]
	for i := range chunk {
		chunk[i] += shift // NULL placeholders shift too; they are never read
	}
	c.fb[z] = zn.minI
	c.d8[z] = append(chunk, uint8(x-zn.minI))
}

func (c *column) forDrop() {
	c.forOff = true
	c.fb, c.d8 = nil, nil
}

// rebuildZonesFrom discards every zone from the one containing row onward and
// re-derives them (and the frame-of-reference vectors) over rows [.., n).
// Delete and Update call it once per write with the first disturbed row.
func (c *column) rebuildZonesFrom(row, n int) {
	z0 := row >> ZoneShift
	if z0 > len(c.zones) {
		z0 = len(c.zones)
	}
	c.zones = c.zones[:z0]
	c.zrows = z0 << ZoneShift
	if !c.forOff {
		c.fb = c.fb[:z0]
		c.d8 = c.d8[:z0]
		c.d8Cow = false // the partial chunk was dropped; re-extension allocates fresh
	}
	for r := c.zrows; r < n; r++ {
		c.zoneExtend(r)
	}
}

// minMaxZones folds the zone bounds instead of rescanning payloads; the
// caller guarantees the zones cover exactly the live rows.
func (c *column) minMaxZones() (min, max value.Value) {
	first := true
	var loI, hiI int64
	var loF, hiF float64
	var loS, hiS string
	for i := range c.zones {
		zn := &c.zones[i]
		if !zn.has {
			continue
		}
		switch c.kind {
		case value.Int, value.Date, value.Bool:
			if first {
				loI, hiI = zn.minI, zn.maxI
			} else {
				if zn.minI < loI {
					loI = zn.minI
				}
				if zn.maxI > hiI {
					hiI = zn.maxI
				}
			}
		case value.Float:
			if first {
				loF, hiF = zn.minF, zn.maxF
			} else {
				if zn.minF < loF {
					loF = zn.minF
				}
				if zn.maxF > hiF {
					hiF = zn.maxF
				}
			}
		case value.Text:
			if first {
				loS, hiS = zn.minS, zn.maxS
			} else {
				if zn.minS < loS {
					loS = zn.minS
				}
				if zn.maxS > hiS {
					hiS = zn.maxS
				}
			}
		}
		first = false
	}
	if first {
		return value.NewNull(), value.NewNull()
	}
	switch c.kind {
	case value.Int:
		return value.NewInt(loI), value.NewInt(hiI)
	case value.Date:
		return value.NewDateDays(loI), value.NewDateDays(hiI)
	case value.Bool:
		return value.NewBool(loI == 1), value.NewBool(hiI == 1)
	case value.Float:
		return value.NewFloat(loF), value.NewFloat(hiF)
	case value.Text:
		return value.NewText(loS), value.NewText(hiS)
	}
	return value.NewNull(), value.NewNull()
}

// count returns the number of set bits below position n.
func (b *bitmap) count(n int) int {
	total := 0
	full := n >> 6
	if full > len(b.words) {
		full = len(b.words)
	}
	for _, w := range b.words[:full] {
		total += popcount64(w)
	}
	if rem := n & 63; rem != 0 && full < len(b.words) {
		total += popcount64(b.words[full] & ((1 << uint(rem)) - 1))
	}
	return total
}

func popcount64(w uint64) int {
	n := 0
	for ; w != 0; w &= w - 1 {
		n++
	}
	return n
}

// ---------------------------------------------------------------------------
// Dictionary liveness, compaction, and the opt-in sorted dictionary
// ---------------------------------------------------------------------------

// retain notes one more live row holding code c.
func (d *dict) retain(c uint32) {
	d.refs[c]++
	if d.refs[c] == 1 {
		d.live++
	}
}

// release notes one fewer live row holding code c.
func (d *dict) release(c uint32) {
	d.refs[c]--
	if d.refs[c] == 0 {
		d.live--
	}
}

// maybeCompactDict drops dead dictionary entries once they outnumber the live
// ones (and the dictionary is big enough to matter), remapping the code
// vector. Codes are reassigned in first-seen order among survivors, so the
// engine's per-entry verdict loops shrink back to the live vocabulary.
func (c *column) maybeCompactDict() {
	if c.kind != value.Text {
		return
	}
	d := c.dict
	if len(d.strs) < dictCompactMin || 2*d.live >= len(d.strs) {
		return
	}
	remap := make([]uint32, len(d.strs))
	strs := make([]string, 0, d.live)
	refs := make([]int32, 0, d.live)
	code := make(map[string]uint32, d.live)
	for old, s := range d.strs {
		if d.refs[old] <= 0 {
			// Dead entries are simply left out of the fresh map — the old map
			// is never mutated, because frozen snapshots may still read it
			// (their rows legitimately hold codes the live table dropped).
			continue
		}
		nc := uint32(len(strs))
		remap[old] = nc
		strs = append(strs, s)
		refs = append(refs, d.refs[old])
		code[s] = nc
	}
	for i := range c.codes {
		if c.nulls.get(i) {
			c.codes[i] = 0 // NULL placeholder; never dereferenced
		} else {
			c.codes[i] = remap[c.codes[i]]
		}
	}
	d.strs, d.refs = strs, refs
	d.codeMu.Lock()
	d.code = code
	d.codeMu.Unlock()
	if d.ranked {
		d.rankStale.Store(true)
	}
}

// dictCompactMin is the smallest dictionary worth compacting.
const dictCompactMin = 64

// buildRanks derives the code<->rank tables for a sorted dictionary.
func (d *dict) buildRanks() {
	d.order = make([]uint32, len(d.strs))
	for i := range d.order {
		d.order[i] = uint32(i)
	}
	sort.Slice(d.order, func(a, b int) bool { return d.strs[d.order[a]] < d.strs[d.order[b]] })
	d.rank = make([]uint32, len(d.strs))
	for r, code := range d.order {
		d.rank[code] = uint32(r)
	}
	// Publish after the tables are written: readers acquire through this
	// load in SortedDict before touching rank/order.
	d.rankStale.Store(false)
}

// finishWrite runs the per-column write-completion maintenance: rebuild zones
// from the first disturbed row (dirtyFrom < 0 means no rows moved or changed
// in place) and compact churned dictionaries. Sorted-dict ranks are NOT
// rebuilt here — every statement of a bulk load grows the vocabulary, so an
// eager per-statement re-sort would make loading quadratic; the next ranked
// read rebuilds once instead.
func (t *Table) finishWrite(dirtyFrom int) {
	for j := range t.cols {
		c := &t.cols[j]
		if dirtyFrom >= 0 {
			c.rebuildZonesFrom(dirtyFrom, t.rows)
		}
		if !t.shared {
			// Compaction remaps the code vector in place, so it may only run
			// when prepareMutate has unshared it from every snapshot. The
			// rollback path skips it; the next delete/update compacts instead.
			c.maybeCompactDict()
		}
	}
}

// EnableSortedDict turns on the sorted dictionary for a TEXT attribute of
// relName: the column keeps code<->rank tables in string sort order so text
// range and LIKE-prefix predicates compare integer ranks. The tables are
// rebuilt at write completion whenever the vocabulary changed.
func (db *Database) EnableSortedDict(relName, attr string) error {
	if d := db.dur; d != nil {
		// Serialize against commits so the re-publish below cannot interleave
		// with a commit's freeze/install window (lock order: durability.mu
		// before db.mu).
		d.mu.Lock()
		defer d.mu.Unlock()
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	tbl := db.tables[strings.ToLower(relName)]
	if tbl == nil {
		return fmt.Errorf("storage: unknown relation %q", relName)
	}
	p := tbl.rel.AttrIndex(attr)
	if p < 0 {
		return fmt.Errorf("storage: unknown attribute %s.%s", relName, attr)
	}
	c := &tbl.cols[p]
	if c.kind != value.Text {
		return fmt.Errorf("storage: sorted dictionary needs a TEXT attribute, %s.%s is %s", relName, attr, c.kind)
	}
	if !c.dict.ranked {
		c.dict.ranked = true
		c.dict.buildRanks()
		// Re-publish at the same sequence: results are identical, but the
		// current snapshot's frozen dictionary must carry the ranked flag so
		// snapshot readers get the rank-compare fast path too.
		tbl.dirty = true
		db.publishLocked(db.pubSeq)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Read-side accessors (Col)
// ---------------------------------------------------------------------------

// ZoneCount returns the number of zones currently summarizing the column
// (including a frozen column's private boundary-zone copy).
func (c Col) ZoneCount() int { return c.c.zoneCount() }

// ZonesSynced reports whether the zones cover exactly n rows — the guard the
// engine checks once per scan before trusting zone verdicts.
func (c Col) ZonesSynced(n int) bool { return c.c.zrows == n }

// ZoneNulls returns the NULL count of zone z.
func (c Col) ZoneNulls(z int) int { return int(c.c.zoneAt(z).nulls) }

// ZoneSorted reports whether zone z's bounded values are non-decreasing.
func (c Col) ZoneSorted(z int) bool { return c.c.zoneAt(z).sorted }

// ZoneHasNaN reports whether zone z holds any NaN (floats only): its bounds
// cover the comparable values but cannot decide predicates wholesale.
func (c Col) ZoneHasNaN(z int) bool { return c.c.zoneAt(z).hasNaN }

// ZoneIntBounds returns zone z's Int/Date (or Bool, as 0/1) bounds; ok is
// false when the zone holds no bounded value.
func (c Col) ZoneIntBounds(z int) (lo, hi int64, ok bool) {
	zn := c.c.zoneAt(z)
	return zn.minI, zn.maxI, zn.has
}

// ZoneFloatBounds returns zone z's Float bounds over its comparable values;
// ok is false when the zone holds no bounded value. Callers must also check
// ZoneHasNaN before treating the bounds as covering every row.
func (c Col) ZoneFloatBounds(z int) (lo, hi float64, ok bool) {
	zn := c.c.zoneAt(z)
	return zn.minF, zn.maxF, zn.has
}

// ZoneTextBounds returns zone z's Text bounds (shared dictionary strings); ok
// is false when the zone holds no bounded value.
func (c Col) ZoneTextBounds(z int) (lo, hi string, ok bool) {
	zn := c.c.zoneAt(z)
	return zn.minS, zn.maxS, zn.has
}

// FORInts exposes the frame-of-reference encoding of an Int/Date column: one
// base per zone and one ZoneRows-sized chunk of byte deltas per zone
// (value = base[i>>ZoneShift] + delta[i>>ZoneShift][i&ZoneMask]). ok is false
// when any zone's span overflowed a byte.
func (c Col) FORInts() (base []int64, delta [][]uint8, ok bool) {
	if c.c.forOff || c.c.d8Rows() != c.c.zrows {
		return nil, nil, false
	}
	return c.c.fb, c.c.d8, true
}

// SortedDict reports whether the column's dictionary keeps sort-order ranks,
// rebuilding them first if writes left them stale. The rebuild is guarded so
// concurrent readers sort the vocabulary once; a true return means Ranks,
// LowerBoundRank and DictStringAtRank reflect the current vocabulary.
func (c Col) SortedDict() bool {
	d := c.c.dict
	if d == nil || !d.ranked {
		return false
	}
	if d.rankStale.Load() {
		d.rankMu.Lock()
		if d.rankStale.Load() {
			d.buildRanks()
		}
		d.rankMu.Unlock()
	}
	return true
}

// Ranks exposes the code->rank table of a sorted dictionary: rank order is
// string sort order over the current vocabulary.
func (c Col) Ranks() []uint32 { return c.c.dict.rank }

// LowerBoundRank returns the number of dictionary strings sorting strictly
// below s — the rank s would occupy in a sorted dictionary.
func (c Col) LowerBoundRank(s string) int {
	d := c.c.dict
	return sort.Search(len(d.order), func(i int) bool { return d.strs[d.order[i]] >= s })
}

// DictLive returns the number of dictionary entries still held by live rows.
func (c Col) DictLive() int { return c.c.dict.live }
