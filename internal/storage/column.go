package storage

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/value"
)

// This file holds the columnar backbone of a Table: one typed vector per
// attribute plus a null bitmap. Integers live in []int64, floats in
// []float64, text as []uint32 codes into a per-column string dictionary,
// dates as epoch-day []int64, and booleans as []bool. Tuples exist only at
// the API boundary — they are materialized on demand from the vectors.

// bitmap is a packed bit set marking NULL positions of one column.
//
// A frozen (snapshot) bitmap shares the writer's fully-populated words as a
// length-capped prefix and carries the boundary word — the one the writer is
// still filling — as a private masked copy in tail. Writer bitmaps keep
// tail == 0, so the extra branch in get never changes live semantics.
type bitmap struct {
	words []uint64
	tail  uint64
}

func (b *bitmap) get(i int) bool {
	w := i >> 6
	if w >= len(b.words) {
		if w == len(b.words) {
			return b.tail&(1<<(uint(i)&63)) != 0
		}
		return false
	}
	return b.words[w]&(1<<(uint(i)&63)) != 0
}

func (b *bitmap) set(i int, v bool) {
	w := i >> 6
	if w >= len(b.words) {
		if !v {
			return // storing false beyond the words is a no-op; null-free
			// columns keep an empty bitmap
		}
		for w >= len(b.words) {
			b.words = append(b.words, 0)
		}
	}
	mask := uint64(1) << (uint(i) & 63)
	if v {
		b.words[w] |= mask
	} else {
		b.words[w] &^= mask
	}
}

// truncate clears every bit at position n or beyond.
func (b *bitmap) truncate(n int) {
	full := (n + 63) >> 6
	if full < len(b.words) {
		b.words = b.words[:full]
	}
	if n&63 != 0 && len(b.words) == full && full > 0 {
		b.words[full-1] &= (1 << (uint(n) & 63)) - 1
	}
}

// dict is a per-column string dictionary: codes are assigned in first-seen
// order. Per-code reference counts track which entries live rows still hold,
// and maybeCompactDict (zonemap.go) reclaims the codes once dead entries
// dominate — so per-entry verdict loops never pay for churned-away strings
// forever. An opt-in sorted variant (EnableSortedDict) additionally keeps
// code<->rank tables in string sort order.
type dict struct {
	strs []string
	code map[string]uint32
	// codeMu guards the code map, which is shared between the writer's dict
	// and the frozen clones handed to snapshots: the writer interns under the
	// write lock while snapshot readers probe DictCode concurrently. The
	// pointer is shared across clones so everyone serializes on one lock.
	codeMu *sync.RWMutex
	// refs[c] counts live rows holding code c; live counts codes with
	// refs > 0. Maintained by the writer paths (appendVal/setVal/releaseRow).
	refs []int32
	live int
	// ranked turns on the sorted dictionary: rank maps code -> sort rank,
	// order maps rank -> code. Writers flag rankStale when the vocabulary
	// changes; the tables rebuild lazily on the next ranked read (guarded by
	// rankMu so concurrent readers rebuild once), which keeps bulk loads
	// linear instead of re-sorting the dictionary after every statement.
	ranked    bool
	rankStale atomic.Bool
	rankMu    sync.Mutex
	rank      []uint32
	order     []uint32
}

func newDict() *dict {
	return &dict{code: make(map[string]uint32), codeMu: &sync.RWMutex{}}
}

// intern returns the code for s, assigning the next one on first sight.
func (d *dict) intern(s string) uint32 {
	d.codeMu.RLock()
	c, ok := d.code[s]
	d.codeMu.RUnlock()
	if ok {
		return c
	}
	c = uint32(len(d.strs))
	d.strs = append(d.strs, s)
	d.codeMu.Lock()
	d.code[s] = c
	d.codeMu.Unlock()
	d.refs = append(d.refs, 0)
	if d.ranked {
		d.rankStale.Store(true)
	}
	return c
}

// freeze builds a snapshot clone of the dictionary: the vocabulary is the
// length-capped strs prefix (the writer only appends), the code map is shared
// under codeMu with lookups filtered to the frozen vocabulary, and the rank
// tables rebuild lazily — privately, over the frozen vocabulary — on the
// clone's first ranked read. refs stay with the writer; a frozen dict never
// retains or releases.
func (d *dict) freeze() *dict {
	fd := &dict{
		strs:   d.strs[:len(d.strs):len(d.strs)],
		code:   d.code,
		codeMu: d.codeMu,
		live:   d.live,
		ranked: d.ranked,
	}
	if fd.ranked {
		fd.rankStale.Store(true)
	}
	return fd
}

// column is one attribute's storage: a typed vector (selected by kind) and
// the null bitmap. NULL positions carry a zero placeholder in the vector.
// Zone maps (zonemap.go) summarize each ZoneRows-sized range; Int/Date
// columns additionally keep a frame-of-reference encoding (per-zone base +
// byte deltas) while every zone's span fits in a byte.
type column struct {
	kind  value.Kind
	nulls bitmap
	ints  []int64 // Int payloads, or Date epoch days
	flts  []float64
	bls   []bool
	codes []uint32 // Text dictionary codes
	dict  *dict
	// zones summarize ZoneRows-sized ranges; zrows is the number of rows they
	// cover (== the table's row count whenever no write is in flight).
	zones []zone
	zrows int
	// ztail is a frozen column's private copy of the partial boundary zone the
	// writer is still extending; zoneAt routes reads past len(zones) to it.
	// Writer columns keep hasZTail false.
	ztail    zone
	hasZTail bool
	// Frame-of-reference encoding: fb holds one base per zone, d8 one
	// ZoneRows-capacity chunk of byte deltas per zone (value = fb[z] +
	// d8[z][row&ZoneMask]). forOff sticks once any zone's span overflows a
	// byte. d8Cow marks the current partial chunk as shared with a frozen
	// snapshot: a rebase (the only in-place mutation) clones it first.
	fb     []int64
	d8     [][]uint8
	d8Cow  bool
	forOff bool
}

// zoneAt returns the zone summary for index z, routing a frozen column's
// boundary-zone reads to its private tail copy.
func (c *column) zoneAt(z int) *zone {
	if z < len(c.zones) {
		return &c.zones[z]
	}
	return &c.ztail
}

// zoneCount returns the number of zones summarizing the column, including a
// frozen column's private tail zone.
func (c *column) zoneCount() int {
	n := len(c.zones)
	if c.hasZTail {
		n++
	}
	return n
}

// d8Rows returns the number of rows the frame-of-reference chunks cover.
func (c *column) d8Rows() int {
	if len(c.d8) == 0 {
		return 0
	}
	return (len(c.d8)-1)<<ZoneShift + len(c.d8[len(c.d8)-1])
}

func newColumn(kind value.Kind) column {
	c := column{kind: kind}
	if kind == value.Text {
		c.dict = newDict()
	}
	if kind != value.Int && kind != value.Date {
		c.forOff = true // frame-of-reference applies to Int/Date only
	}
	return c
}

// appendVal appends v at position row (== the current column length). The
// caller has already coerced v to the column kind or NULL; anything else is
// a storage-invariant violation.
func (c *column) appendVal(v value.Value, row int) {
	null := v.IsNull()
	if null {
		c.nulls.set(row, true)
	} else if v.Kind() != c.kind {
		panic(fmt.Sprintf("storage: %s value appended to %s column", v.Kind(), c.kind))
	}
	switch c.kind {
	case value.Int:
		var x int64
		if !null {
			x = v.Int()
		}
		c.ints = append(c.ints, x)
	case value.Float:
		var x float64
		if !null {
			x = v.Float()
		}
		c.flts = append(c.flts, x)
	case value.Text:
		var x uint32
		if !null {
			x = c.dict.intern(v.Text())
			c.dict.retain(x)
		}
		c.codes = append(c.codes, x)
	case value.Date:
		var x int64
		if !null {
			x = v.DateDays()
		}
		c.ints = append(c.ints, x)
	case value.Bool:
		c.bls = append(c.bls, !null && v.Bool())
	default:
		panic(fmt.Sprintf("storage: column of kind %s", c.kind))
	}
	c.zoneExtend(row)
}

// value materializes position i. Text shares the dictionary string; no
// allocation happens for any kind.
func (c *column) value(i int) value.Value {
	if c.nulls.get(i) {
		return value.NewNull()
	}
	switch c.kind {
	case value.Int:
		return value.NewInt(c.ints[i])
	case value.Float:
		return value.NewFloat(c.flts[i])
	case value.Text:
		return value.NewText(c.dict.strs[c.codes[i]])
	case value.Date:
		return value.NewDateDays(c.ints[i])
	case value.Bool:
		return value.NewBool(c.bls[i])
	default:
		return value.NewNull()
	}
}

// setVal overwrites position i (Update path; v is coerced or NULL). Zone
// maps are NOT maintained here — the Update path rebuilds them from the first
// updated row once the write completes.
func (c *column) setVal(i int, v value.Value) {
	null := v.IsNull()
	if c.kind == value.Text && !c.nulls.get(i) {
		c.dict.release(c.codes[i]) // the old string loses this row
	}
	c.nulls.set(i, null)
	if !null && v.Kind() != c.kind {
		panic(fmt.Sprintf("storage: %s value stored into %s column", v.Kind(), c.kind))
	}
	switch c.kind {
	case value.Int:
		if null {
			c.ints[i] = 0
		} else {
			c.ints[i] = v.Int()
		}
	case value.Float:
		if null {
			c.flts[i] = 0
		} else {
			c.flts[i] = v.Float()
		}
	case value.Text:
		if null {
			c.codes[i] = 0
		} else {
			x := c.dict.intern(v.Text())
			c.dict.retain(x)
			c.codes[i] = x
		}
	case value.Date:
		if null {
			c.ints[i] = 0
		} else {
			c.ints[i] = v.DateDays()
		}
	case value.Bool:
		c.bls[i] = !null && v.Bool()
	}
}

// releaseRow drops row i's dictionary reference ahead of its removal
// (Delete path; no-op for non-text columns and NULL positions).
func (c *column) releaseRow(i int) {
	if c.kind != value.Text || c.nulls.get(i) {
		return
	}
	c.dict.release(c.codes[i])
}

// moveRow copies position src onto dst (Delete compaction; dst <= src).
func (c *column) moveRow(dst, src int) {
	c.nulls.set(dst, c.nulls.get(src))
	switch c.kind {
	case value.Int, value.Date:
		c.ints[dst] = c.ints[src]
	case value.Float:
		c.flts[dst] = c.flts[src]
	case value.Text:
		c.codes[dst] = c.codes[src]
	case value.Bool:
		c.bls[dst] = c.bls[src]
	}
}

// truncate drops every position at n or beyond.
func (c *column) truncate(n int) {
	c.nulls.truncate(n)
	switch c.kind {
	case value.Int, value.Date:
		c.ints = c.ints[:n]
	case value.Float:
		c.flts = c.flts[:n]
	case value.Text:
		c.codes = c.codes[:n]
	case value.Bool:
		c.bls = c.bls[:n]
	}
}

// minMax recomputes the column's bounds over rows [0, n) after a delete or
// update invalidated them. When the zone maps cover exactly those rows the
// bounds fold from ZoneRows-sized summaries instead of rescanning payloads;
// otherwise a typed scan runs. Bounds cover the comparable values: NaN is
// skipped (it compares as neither smaller nor larger), matching the
// incremental statistics in stats.go.
func (c *column) minMax(n int) (min, max value.Value) {
	if n > 0 && c.zrows == n {
		return c.minMaxZones()
	}
	return c.minMaxScan(n)
}

func (c *column) minMaxScan(n int) (min, max value.Value) {
	min, max = value.NewNull(), value.NewNull()
	switch c.kind {
	case value.Int, value.Date:
		first := true
		var lo, hi int64
		for i := 0; i < n; i++ {
			if c.nulls.get(i) {
				continue
			}
			x := c.ints[i]
			if first {
				lo, hi, first = x, x, false
			} else if x < lo {
				lo = x
			} else if x > hi {
				hi = x
			}
		}
		if !first {
			if c.kind == value.Int {
				return value.NewInt(lo), value.NewInt(hi)
			}
			return value.NewDateDays(lo), value.NewDateDays(hi)
		}
	case value.Float:
		first := true
		var lo, hi float64
		for i := 0; i < n; i++ {
			if c.nulls.get(i) {
				continue
			}
			x := c.flts[i]
			if math.IsNaN(x) {
				continue // incomparable; bounds describe the ordered values
			}
			if first {
				lo, hi, first = x, x, false
			} else if x < lo {
				lo = x
			} else if x > hi {
				hi = x
			}
		}
		if !first {
			return value.NewFloat(lo), value.NewFloat(hi)
		}
	case value.Text:
		first := true
		var lo, hi string
		for i := 0; i < n; i++ {
			if c.nulls.get(i) {
				continue
			}
			s := c.dict.strs[c.codes[i]]
			if first {
				lo, hi, first = s, s, false
			} else if s < lo {
				lo = s
			} else if s > hi {
				hi = s
			}
		}
		if !first {
			return value.NewText(lo), value.NewText(hi)
		}
	case value.Bool:
		sawF, sawT := false, false
		for i := 0; i < n; i++ {
			if c.nulls.get(i) {
				continue
			}
			if c.bls[i] {
				sawT = true
			} else {
				sawF = true
			}
		}
		switch {
		case sawF && sawT:
			return value.NewBool(false), value.NewBool(true)
		case sawF:
			return value.NewBool(false), value.NewBool(false)
		case sawT:
			return value.NewBool(true), value.NewBool(true)
		}
	}
	return min, max
}

// Col is a read-only handle on one column vector, the engine's zero-copy
// window into the table. The slices it exposes are the live storage — safe
// for concurrent readers under the storage contract (writers are exclusive),
// and never to be mutated.
type Col struct {
	c *column
}

// Kind returns the column's value kind (Date columns report value.Date but
// expose epoch days through Ints).
func (c Col) Kind() value.Kind { return c.c.kind }

// Null reports whether position i is NULL.
func (c Col) Null(i int) bool { return c.c.nulls.get(i) }

// HasNulls reports whether any position is NULL (cheap word scan), letting
// vectorized filters skip the per-row null check entirely.
func (c Col) HasNulls() bool {
	for _, w := range c.c.nulls.words {
		if w != 0 {
			return true
		}
	}
	return c.c.nulls.tail != 0
}

// Ints exposes the Int payloads — or, for Date columns, the epoch days.
func (c Col) Ints() []int64 { return c.c.ints }

// Floats exposes the Float payloads.
func (c Col) Floats() []float64 { return c.c.flts }

// Bools exposes the Bool payloads.
func (c Col) Bools() []bool { return c.c.bls }

// Codes exposes the Text dictionary codes.
func (c Col) Codes() []uint32 { return c.c.codes }

// DictLen returns the dictionary size (distinct strings ever stored).
func (c Col) DictLen() int { return len(c.c.dict.strs) }

// DictString resolves a dictionary code to its string (shared, not copied).
func (c Col) DictString(code uint32) string { return c.c.dict.strs[code] }

// DictCode looks up the code for s; ok is false when s never occurred in the
// column — which proves no row equals s without touching a single string. The
// map is shared with the writer's dictionary (codeMu serializes against
// interning), and codes past the frozen vocabulary — strings first seen after
// the snapshot — report as absent.
func (c Col) DictCode(s string) (uint32, bool) {
	d := c.c.dict
	d.codeMu.RLock()
	code, ok := d.code[s]
	d.codeMu.RUnlock()
	if ok && code >= uint32(len(d.strs)) {
		return 0, false
	}
	return code, ok
}

// Value materializes position i (allocation-free; Text shares the
// dictionary string).
func (c Col) Value(i int) value.Value { return c.c.value(i) }
