package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/value"
)

// This file is the logical-op codec of the write-ahead log. Every applied
// mutation encodes as one op; one WAL record carries one committed batch
// (all the ops of one statement, with a monotonic sequence number), so
// recovery's unit of atomicity is exactly the unit Ask acknowledges.
//
// Op layout (all integers varint unless noted):
//
//	insert      0x01 | rel | arity | value*
//	delete      0x02 | rel | count | position-delta*        (ascending rows)
//	update      0x03 | rel | count | (position, arity, value*)*
//	createindex 0x04 | rel | name | attrCount | attr*
//
// Values encode as a kind byte plus a typed payload: 'n' NULL, 'i' zigzag
// int, 'f' 8-byte float bits, 't' length-prefixed text, 'd' zigzag epoch
// days, 'B'/'b' bool. Strings are length-prefixed so frames cannot alias.

const (
	opInsert      = 0x01
	opDelete      = 0x02
	opUpdate      = 0x03
	opCreateIndex = 0x04
)

func appendUvarint(buf []byte, x uint64) []byte { return binary.AppendUvarint(buf, x) }

func appendVarint(buf []byte, x int64) []byte { return binary.AppendVarint(buf, x) }

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendWalValue(buf []byte, v value.Value) []byte {
	switch v.Kind() {
	case value.Null:
		return append(buf, 'n')
	case value.Int:
		buf = append(buf, 'i')
		return appendVarint(buf, v.Int())
	case value.Float:
		buf = append(buf, 'f')
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float()))
	case value.Text:
		buf = append(buf, 't')
		return appendString(buf, v.Text())
	case value.Date:
		buf = append(buf, 'd')
		return appendVarint(buf, v.DateDays())
	case value.Bool:
		if v.Bool() {
			return append(buf, 'B')
		}
		return append(buf, 'b')
	default:
		return append(buf, '?')
	}
}

// walDecoder consumes the typed fields of an op payload. Every read checks
// bounds: a decoder over corrupt bytes returns errors, never panics.
type walDecoder struct {
	buf []byte
	off int
	err error
}

func (d *walDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("storage: wal decode: "+format, args...)
	}
}

func (d *walDecoder) done() bool { return d.off >= len(d.buf) || d.err != nil }

func (d *walDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("unexpected end of record")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *walDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return x
}

func (d *walDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return x
}

func (d *walDecoder) uint64le() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated 8-byte field")
		return 0
	}
	x := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return x
}

func (d *walDecoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("string length %d exceeds record", n)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *walDecoder) value() value.Value {
	switch k := d.byte(); k {
	case 'n':
		return value.NewNull()
	case 'i':
		return value.NewInt(d.varint())
	case 'f':
		return value.NewFloat(math.Float64frombits(d.uint64le()))
	case 't':
		return value.NewText(d.string())
	case 'd':
		return value.NewDateDays(d.varint())
	case 'B':
		return value.NewBool(true)
	case 'b':
		return value.NewBool(false)
	default:
		d.fail("unknown value kind 0x%02x", k)
		return value.NewNull()
	}
}

func (d *walDecoder) tuple() Tuple {
	arity := d.uvarint()
	if d.err != nil {
		return nil
	}
	if arity > uint64(len(d.buf)-d.off)+1 {
		d.fail("arity %d exceeds record", arity)
		return nil
	}
	tup := make(Tuple, arity)
	for i := range tup {
		tup[i] = d.value()
	}
	return tup
}

// ---------------------------------------------------------------------------
// Op encoding (writer side)
// ---------------------------------------------------------------------------

func (d *durability) logInsert(rel string, tup Tuple) {
	d.pending = append(d.pending, opInsert)
	d.pending = appendString(d.pending, rel)
	d.pending = appendUvarint(d.pending, uint64(len(tup)))
	for _, v := range tup {
		d.pending = appendWalValue(d.pending, v)
	}
	d.pendingOps++
}

func (d *durability) logDelete(rel string, positions []int) {
	d.pending = append(d.pending, opDelete)
	d.pending = appendString(d.pending, rel)
	d.pending = appendUvarint(d.pending, uint64(len(positions)))
	prev := 0
	for _, p := range positions {
		d.pending = appendUvarint(d.pending, uint64(p-prev))
		prev = p
	}
	d.pendingOps++
}

func (d *durability) logUpdate(rel string, rows []updatedRow) {
	d.pending = append(d.pending, opUpdate)
	d.pending = appendString(d.pending, rel)
	d.pending = appendUvarint(d.pending, uint64(len(rows)))
	for _, u := range rows {
		d.pending = appendUvarint(d.pending, uint64(u.pos))
		d.pending = appendUvarint(d.pending, uint64(len(u.repl)))
		for _, v := range u.repl {
			d.pending = appendWalValue(d.pending, v)
		}
	}
	d.pendingOps++
}

func (d *durability) logCreateIndex(rel, name string, attrs []string) {
	d.pending = append(d.pending, opCreateIndex)
	d.pending = appendString(d.pending, rel)
	d.pending = appendString(d.pending, name)
	d.pending = appendUvarint(d.pending, uint64(len(attrs)))
	for _, a := range attrs {
		d.pending = appendString(d.pending, a)
	}
	d.pendingOps++
}

// updatedRow is one applied UPDATE: the row position and its replacement.
type updatedRow struct {
	pos  int
	repl Tuple
}

// ---------------------------------------------------------------------------
// Op replay (recovery side)
// ---------------------------------------------------------------------------

// replayBatch decodes and applies one committed WAL record body (after its
// sequence number). Any decode or apply error aborts the batch — the caller
// quarantines the log from this record onward.
func (db *Database) replayBatch(d *walDecoder) (ops int, err error) {
	opCount := d.uvarint()
	for i := uint64(0); i < opCount; i++ {
		if d.err != nil {
			return ops, d.err
		}
		switch op := d.byte(); op {
		case opInsert:
			rel := d.string()
			tup := d.tuple()
			if d.err != nil {
				return ops, d.err
			}
			if err := db.Insert(rel, tup); err != nil {
				return ops, err
			}
		case opDelete:
			rel := d.string()
			n := d.uvarint()
			if d.err != nil {
				return ops, d.err
			}
			if n > uint64(len(d.buf)) {
				return ops, fmt.Errorf("storage: wal decode: delete count %d exceeds record", n)
			}
			positions := make([]int, n)
			pos := 0
			for j := range positions {
				pos += int(d.uvarint())
				positions[j] = pos
			}
			if d.err != nil {
				return ops, d.err
			}
			if err := db.applyDeletePositions(rel, positions); err != nil {
				return ops, err
			}
		case opUpdate:
			rel := d.string()
			n := d.uvarint()
			if d.err != nil {
				return ops, d.err
			}
			if n > uint64(len(d.buf)) {
				return ops, fmt.Errorf("storage: wal decode: update count %d exceeds record", n)
			}
			rows := make([]updatedRow, n)
			for j := range rows {
				rows[j].pos = int(d.uvarint())
				rows[j].repl = d.tuple()
			}
			if d.err != nil {
				return ops, d.err
			}
			if err := db.applyUpdateRows(rel, rows); err != nil {
				return ops, err
			}
		case opCreateIndex:
			rel := d.string()
			name := d.string()
			nAttrs := d.uvarint()
			if d.err != nil {
				return ops, d.err
			}
			if nAttrs > uint64(len(d.buf)) {
				return ops, fmt.Errorf("storage: wal decode: attr count %d exceeds record", nAttrs)
			}
			attrs := make([]string, nAttrs)
			for j := range attrs {
				attrs[j] = d.string()
			}
			if d.err != nil {
				return ops, d.err
			}
			tbl := db.Table(rel)
			if tbl == nil {
				return ops, fmt.Errorf("storage: wal replay: unknown relation %q", rel)
			}
			if err := tbl.CreateIndex(name, attrs...); err != nil {
				return ops, err
			}
		default:
			return ops, fmt.Errorf("storage: wal decode: unknown op 0x%02x", op)
		}
		ops++
	}
	if d.err != nil {
		return ops, d.err
	}
	return ops, nil
}
