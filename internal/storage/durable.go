package storage

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// This file wires the write-ahead log and the checkpoint segments into the
// Database. A durable database lives in one directory (abstracted as a
// wal.FS so the crash tests can run against an in-memory disk):
//
//	checkpoint.seg   columnar snapshot of every table + the WAL sequence floor
//	wal.log          framed records, one per committed statement batch
//	wal.corrupt      quarantined unusable log tail from the last recovery
//
// The protocol is log-before-acknowledge: every applied mutation appends a
// logical op to a pending buffer, and the batch flushes (append + fsync) as
// one framed record before the caller's statement returns. Recovery loads
// the checkpoint, replays the WAL's longest valid committed prefix through
// the ordinary DML paths, and quarantines whatever tail a crash or bit rot
// left behind — it never fails on a corrupt log, and it never trusts one.
//
// A WAL append or fsync that fails latches the layer into a permanent
// failed state: every later write is rejected with ErrWALFailed. Appending
// past a torn frame would produce records recovery must quarantine —
// acknowledged statements silently lost — so the only safe answers are
// stop or restart (a restart re-runs recovery, which salvages the log).
//
// Locking: the pending buffer, batch depth, and rollback marks are guarded
// by db.mu (the op encoders run inside the DML paths, which hold it);
// the log writer and its rotation are guarded by durability.mu. Lock order
// is durability.mu before db.mu, never the reverse.

// Durable file names inside the database directory.
const (
	WALFileName        = "wal.log"
	CheckpointFileName = "checkpoint.seg"
	CorruptFileName    = "wal.corrupt"
	checkpointTmpName  = "checkpoint.tmp"
	walTmpName         = "wal.tmp"
)

// DefaultCheckpointBytes is the WAL size that triggers an automatic
// checkpoint when DurableOptions does not say otherwise.
const DefaultCheckpointBytes = 4 << 20

// DefaultSyncGrace is how long past a request's deadline a WAL append+fsync
// may keep running before the commit abandons it as stalled, when
// DurableOptions does not say otherwise. A healthy disk finishes an fsync
// in well under this; only a genuinely wedged device trips it.
const DefaultSyncGrace = 500 * time.Millisecond

// DurableOptions tunes the durability layer.
type DurableOptions struct {
	// CheckpointBytes auto-checkpoints once the log grows past this size.
	// Zero means DefaultCheckpointBytes; negative disables auto-checkpoints
	// (explicit Checkpoint calls still work).
	CheckpointBytes int64

	// SyncGrace bounds how long a commit waits for the WAL append+fsync
	// after its request context expires. Zero means DefaultSyncGrace. The
	// grace applies only to deadline-carrying commits
	// (CommitBatchContext); plain commits wait for the disk indefinitely.
	SyncGrace time.Duration
}

// StallError reports a WAL append/fsync that outlived its request's
// deadline plus the grace window — a stalled disk surfaced as a bounded
// error instead of an indefinite hang. The commit that observed it latched
// the durability layer (the record's on-disk fate is unknown, so appending
// past it would be unsafe); writes are rejected until restart, when
// recovery decides from the log itself whether the record committed.
type StallError struct {
	// Op names the stalled operation ("wal fsync").
	Op string
	// Grace is the window the disk was given past the deadline.
	Grace time.Duration
	// Err is the context error that started the grace clock.
	Err error
}

func (e *StallError) Error() string {
	return fmt.Sprintf("storage: %s stalled beyond the request deadline (+%s grace); writes are rejected until restart", e.Op, e.Grace)
}

// Unwrap exposes the context error so errors.Is sees the deadline.
func (e *StallError) Unwrap() error { return e.Err }

// RecoveryReport describes what EnableDurability found and did. It is
// immutable once returned; the explainer renders it in English.
type RecoveryReport struct {
	// Fresh is true when no durable state existed — the directory was
	// adopted with an initial checkpoint of the in-memory contents.
	Fresh bool
	// CheckpointRows counts rows restored from the checkpoint segment.
	CheckpointRows int
	// ReplayedBatches and ReplayedOps count WAL records (statement batches)
	// and individual ops applied on top of the checkpoint.
	ReplayedBatches int
	ReplayedOps     int
	// SkippedBatches counts records already covered by the checkpoint (the
	// crash-between-checkpoint-and-truncate window).
	SkippedBatches int
	// LostBatches estimates the committed-or-partial records swallowed by
	// the quarantined tail; zero for a clean log.
	LostBatches int
	// QuarantinedBytes is the size of the tail moved to CorruptFile.
	QuarantinedBytes int
	// CheckpointSeq is the WAL sequence floor the loaded checkpoint covered
	// (zero when recovery started without one).
	CheckpointSeq uint64
	// FirstSeq and LastSeq delimit the recovered sequence range: FirstSeq is
	// the first record replayed from the log (zero when none were), LastSeq
	// the sequence the database stands at once recovery finishes. The
	// follower catch-up narration reuses them for its "brought me from
	// sequence A to B" sentence.
	FirstSeq, LastSeq uint64
	// TailReason classifies the damage in plain words ("torn frame header",
	// "checksum mismatch", ...); empty for a clean log.
	TailReason string
	// CorruptFile names the quarantine sidecar when one was written.
	CorruptFile string
	// Rows is the total row count across tables after recovery.
	Rows int
}

// Clean reports whether recovery finished without losing anything.
func (r *RecoveryReport) Clean() bool { return r.TailReason == "" }

// DurabilityStats is the live counter snapshot surfaced on /stats.
type DurabilityStats struct {
	Batches     uint64 // committed WAL records
	Ops         uint64 // logical ops inside them
	Syncs       uint64 // successful fsyncs
	Checkpoints uint64 // checkpoints written (including the adopting one)
	WALBytes    int64  // current log size
	LastSeq     uint64 // last committed sequence number
	WriteError  string // latched WAL failure; empty while the log is healthy
	Recovery    *RecoveryReport
}

// ErrWALFailed reports that an earlier WAL append or fsync failed. The
// durability layer latches into this state — further writes are rejected so
// no statement can be acknowledged without reaching the log — and only a
// process restart (which re-runs recovery over the salvageable log) clears
// it.
var ErrWALFailed = errors.New("storage: write-ahead log failed; writes are rejected until restart")

// errCheckpointBusy reports a checkpoint attempted while a statement batch
// is open or ops are waiting to flush. Auto-checkpoints skip it and retry at
// the next commit; explicit callers see it as an error.
var errCheckpointBusy = errors.New("storage: checkpoint inside an open statement batch")

// walMark is a nesting level's rollback point into the pending buffer.
type walMark struct {
	off int
	ops int
}

// walFailure wraps the first WAL write error for the latch.
type walFailure struct{ err error }

// durability is the per-database WAL state. The pending buffer, depth, and
// marks are guarded by db.mu (the op encoders run inside DML paths holding
// it); mu serializes log flushes and writer rotation; the counters are
// atomic because /stats reads them concurrently with writers.
type durability struct {
	fs   wal.FS
	opts DurableOptions

	mu sync.Mutex  // guards w and the flush/rotate protocol
	w  *wal.Writer // log writer; rotated by Checkpoint

	pending    []byte // encoded ops of the open batch (guarded by db.mu)
	pendingOps int
	depth      int
	marks      []walMark
	rec        []byte // record scratch: seq + opCount + pending (guarded by mu)

	// failed latches the first WAL append/fsync error; once set, every
	// commit and checkpoint is rejected with ErrWALFailed.
	failed atomic.Pointer[walFailure]

	// io tracks in-flight append+fsync goroutines: a deadline-bounded
	// commit that abandons a stalled sync leaves the goroutine running
	// (latched, so nothing else touches the writer), and CloseDurability
	// waits it out before closing the file.
	io sync.WaitGroup

	seq         atomic.Uint64
	batches     atomic.Uint64
	ops         atomic.Uint64
	syncs       atomic.Uint64
	checkpoints atomic.Uint64
	walBytes    atomic.Int64

	// floor is the WAL sequence the checkpoint segment covers: records at or
	// below it are not in the log. Replication catch-up reads consult it to
	// decide between shipping log records and re-seeding from the checkpoint.
	floor atomic.Uint64

	// sink, when set, observes every committed record (replication.go). It
	// is called with mu held, after the fsync and version install.
	sink func(seq uint64, record []byte)

	report *RecoveryReport
}

// latch records the first WAL write failure; later calls keep the original.
func (d *durability) latch(err error) {
	d.failed.CompareAndSwap(nil, &walFailure{err: err})
}

// failedErr returns the latched failure as an ErrWALFailed, or nil.
func (d *durability) failedErr() error {
	if f := d.failed.Load(); f != nil {
		return fmt.Errorf("%w (first failure: %v)", ErrWALFailed, f.err)
	}
	return nil
}

// HasDurableState reports whether fs already holds a durable database.
func HasDurableState(fs wal.FS) bool {
	walOK, _ := fs.Exists(WALFileName)
	ckOK, _ := fs.Exists(CheckpointFileName)
	return walOK || ckOK
}

// EnableDurability attaches a write-ahead log and checkpoint store to db.
// With existing durable state in fs, db must be empty (schema only): the
// checkpoint and the log's longest valid committed prefix are replayed into
// it, and any unusable tail is quarantined to CorruptFileName. With no
// existing state, the in-memory contents (e.g. a seeded dataset) are adopted
// by an initial checkpoint. After it returns, every committed statement is
// logged and fsynced before the mutating call returns.
func (db *Database) EnableDurability(fs wal.FS, opts DurableOptions) (*RecoveryReport, error) {
	if db.dur != nil {
		return nil, errors.New("storage: durability already enabled")
	}
	if opts.CheckpointBytes == 0 {
		opts.CheckpointBytes = DefaultCheckpointBytes
	}
	// Stale temporaries from a crash mid-checkpoint are garbage by
	// construction (the rename never happened); clear them.
	_ = fs.Remove(checkpointTmpName)
	_ = fs.Remove(walTmpName)

	report := &RecoveryReport{}
	hasState := HasDurableState(fs)
	if hasState && db.totalRows() > 0 {
		return nil, errors.New("storage: durable state exists but the database is not empty; recover into a schema-only database")
	}

	// Recovery replays through the ordinary DML paths; suppress the per-op
	// snapshot publishes they would trigger and install one version at the
	// end, at the recovered sequence.
	db.recovering.Store(true)
	defer db.recovering.Store(false)

	var lastSeq uint64
	var ckData []byte
	if ok, _ := fs.Exists(CheckpointFileName); ok {
		data, err := wal.ReadAll(fs, CheckpointFileName)
		if err != nil {
			return nil, fmt.Errorf("storage: reading checkpoint: %w", err)
		}
		ckData = data
		lastSeq, err = db.loadCheckpoint(data)
		if err != nil {
			return nil, err
		}
		report.CheckpointRows = db.totalRows()
		report.CheckpointSeq = lastSeq
	}

	appliedSeq := lastSeq
	validEnd := 0
	walExisted, _ := fs.Exists(WALFileName)
	if walExisted {
		var err error
		validEnd, err = db.replayWAL(fs, ckData, lastSeq, &appliedSeq, report)
		if err != nil {
			return nil, err
		}
	} else if !hasState {
		report.Fresh = true
	}

	f, err := fs.OpenAppend(WALFileName)
	if err != nil {
		return nil, fmt.Errorf("storage: opening log: %w", err)
	}
	if !walExisted {
		// OpenAppend just created the log; make its directory entry durable
		// before any record is acknowledged into it.
		if err := fs.SyncDir(); err != nil {
			return nil, fmt.Errorf("storage: syncing directory: %w", err)
		}
	}
	ckExists, _ := fs.Exists(CheckpointFileName)
	if !ckExists {
		// Adopting an in-memory database that may already have published
		// versions (a seeded dataset): continue sequence numbering above them
		// so snapshot seqs never regress. The initial checkpoint below records
		// this floor, keeping later recoveries consistent with it.
		db.mu.Lock()
		if db.pubSeq > appliedSeq {
			appliedSeq = db.pubSeq
		}
		db.mu.Unlock()
	}
	dur := &durability{fs: fs, w: wal.NewWriter(f, int64(validEnd)), opts: opts, report: report}
	dur.seq.Store(appliedSeq)
	dur.walBytes.Store(int64(validEnd))
	dur.floor.Store(lastSeq)
	db.dur = dur

	report.LastSeq = appliedSeq

	// Recovery is done: publish the recovered state as one version at the
	// recovered sequence, so snapshot readers and the initial checkpoint see
	// it.
	db.recovering.Store(false)
	db.mu.Lock()
	for _, t := range db.tables {
		t.dirty = true
	}
	db.publishLocked(appliedSeq)
	db.mu.Unlock()

	// First boot of this directory (or a crash before the first checkpoint
	// completed): checkpoint now, adopting whatever db already holds.
	if !ckExists {
		if err := db.Checkpoint(); err != nil {
			db.dur = nil
			return nil, err
		}
	}
	report.Rows = db.totalRows()
	return report, nil
}

// replayWAL scans and replays the log, quarantines any unusable tail, and
// rewrites the log file down to its valid prefix. It returns the byte length
// of that prefix. ckData is the raw checkpoint segment (nil when none
// existed): if a record fails partway through application, the database is
// rebuilt from it so no half-applied statement batch survives recovery.
func (db *Database) replayWAL(fs wal.FS, ckData []byte, lastSeq uint64, appliedSeq *uint64, report *RecoveryReport) (int, error) {
	data, rerr := wal.ReadAll(fs, WALFileName)
	records, tail := wal.Scan(data)
	validEnd := len(data)
	var quarantine []byte
	if tail != nil {
		validEnd = tail.Off
		quarantine = tail.Bytes
		report.TailReason = tail.Reason
		report.LostBatches = tail.Lost
	}
	for idx, rec := range records {
		d := &walDecoder{buf: rec.Payload}
		seq := d.uvarint()
		var err error
		applied := false
		switch {
		case d.err != nil:
			err = d.err
		case seq <= lastSeq:
			report.SkippedBatches++
			continue
		case seq != *appliedSeq+1:
			err = fmt.Errorf("sequence %d follows %d", seq, *appliedSeq)
		default:
			applied = true
			var ops int
			ops, err = db.replayBatch(d)
			if err == nil {
				*appliedSeq = seq
				if report.FirstSeq == 0 {
					report.FirstSeq = seq
				}
				report.ReplayedBatches++
				report.ReplayedOps += ops
			}
		}
		if err != nil {
			if applied {
				// replayBatch failed partway: some of the record's ops are
				// applied. A statement batch is the unit of recovery
				// atomicity, so rebuild from the checkpoint and the known-good
				// record prefix — none of the broken record survives.
				if rbErr := db.rebuildPrefix(ckData, records[:idx], lastSeq); rbErr != nil {
					return 0, fmt.Errorf("storage: rolling back partial batch: %w", rbErr)
				}
			}
			// The record framed and checksummed but does not decode or
			// apply — treat it and everything after as the corrupt tail.
			validEnd = rec.Off
			quarantine = data[rec.Off:]
			report.TailReason = err.Error()
			report.LostBatches = len(records) - idx
			if tail != nil {
				report.LostBatches += tail.Lost
			}
			break
		}
	}
	if rerr != nil && report.TailReason == "" {
		// The file has bytes we could not read (the short-read fault). The
		// readable prefix replayed; what follows is unknown and cannot be
		// quarantined — there is nothing readable to set aside.
		report.TailReason = "unreadable log tail: " + rerr.Error()
		report.LostBatches++
	}
	dirty := false
	if len(quarantine) > 0 {
		if err := writeFile(fs, CorruptFileName, quarantine); err != nil {
			return 0, fmt.Errorf("storage: quarantining log tail: %w", err)
		}
		report.CorruptFile = CorruptFileName
		report.QuarantinedBytes = len(quarantine)
		dirty = true
	}
	if size, err := fs.Size(WALFileName); err == nil && size != int64(validEnd) {
		if err := writeFile(fs, walTmpName, data[:validEnd]); err != nil {
			return 0, fmt.Errorf("storage: rewriting log: %w", err)
		}
		if err := fs.Rename(walTmpName, WALFileName); err != nil {
			return 0, fmt.Errorf("storage: rewriting log: %w", err)
		}
		dirty = true
	}
	if dirty {
		// The sidecar create and the log rewrite's rename are directory
		// mutations; make them power-loss durable before recovery reports.
		if err := fs.SyncDir(); err != nil {
			return 0, fmt.Errorf("storage: syncing directory: %w", err)
		}
	}
	return validEnd, nil
}

// rebuildPrefix restores db to the state reached by the checkpoint plus the
// given known-good WAL records. It is the rollback path for a record that
// fails partway through replayBatch — rebuilding from scratch is O(log) but
// only runs once, on the rare corrupt-record recovery.
func (db *Database) rebuildPrefix(ckData []byte, records []wal.Record, lastSeq uint64) error {
	fresh, err := NewDatabase(db.schema)
	if err != nil {
		return err
	}
	db.mu.Lock()
	db.tables = fresh.tables
	for _, t := range db.tables {
		t.owner = db
	}
	db.mu.Unlock()
	if ckData != nil {
		if _, err := db.loadCheckpoint(ckData); err != nil {
			return err
		}
	}
	applied := lastSeq
	for _, rec := range records {
		d := &walDecoder{buf: rec.Payload}
		seq := d.uvarint()
		if d.err != nil {
			return d.err
		}
		if seq <= lastSeq {
			continue
		}
		if seq != applied+1 {
			return fmt.Errorf("sequence %d follows %d", seq, applied)
		}
		if _, err := db.replayBatch(d); err != nil {
			return err
		}
		applied = seq
	}
	return nil
}

func writeFile(fs wal.FS, name string, data []byte) error {
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Checkpoint seals and persists the published version to the checkpoint
// segment (temporary file + atomic rename) and truncates the WAL. It fails
// with an error when a statement batch is open or ops are waiting to flush;
// the automatic checkpoint path simply retries at a later commit.
//
// Holding durability.mu for the whole call blocks commits (so no record can
// land above the floor while the segment writes), but serialization reads
// only the pinned snapshot's frozen tables — concurrent snapshot readers are
// never blocked, and neither is the application of new mutations (they queue
// at the commit fence, not the apply path).
func (db *Database) Checkpoint() error {
	d := db.dur
	if d == nil {
		return errors.New("storage: database is not durable")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.failedErr(); err != nil {
		return err
	}
	// One db.mu acquisition must span the busy check and the version pin:
	// with separate acquisitions a concurrent writer could apply an op in
	// between, and its record — flushed to the rotated log with a sequence
	// above the floor — would replay on top of a checkpoint that already
	// contains the mutation. Every committed record installed its version
	// before releasing durability.mu, so the pinned snapshot reflects exactly
	// the records at or below the floor.
	db.mu.RLock()
	if d.depth > 0 || d.pendingOps > 0 {
		db.mu.RUnlock()
		return errCheckpointBusy
	}
	floor := d.seq.Load()
	snap := db.version.Load()
	db.mu.RUnlock()
	f, err := d.fs.Create(checkpointTmpName)
	if err != nil {
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	w := wal.NewWriter(f, 0)
	if err := db.writeCheckpointTables(w, snap.tables, floor); err != nil {
		w.Close()
		_ = d.fs.Remove(checkpointTmpName)
		return err
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return fmt.Errorf("storage: checkpoint fsync: %w", err)
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	if err := d.fs.Rename(checkpointTmpName, CheckpointFileName); err != nil {
		return fmt.Errorf("storage: checkpoint rename: %w", err)
	}
	// Make the rename power-loss durable before truncating the log it
	// covers — otherwise a power cut could keep the truncation but lose the
	// rename, leaving the old checkpoint with an empty log.
	if err := d.fs.SyncDir(); err != nil {
		return fmt.Errorf("storage: checkpoint dir sync: %w", err)
	}
	// The checkpoint covers every committed record; truncate the log. A
	// crash before the truncate is benign — recovery skips records at or
	// below the checkpoint's sequence floor.
	if err := d.w.Close(); err != nil {
		return fmt.Errorf("storage: rotating log: %w", err)
	}
	nf, err := d.fs.Create(WALFileName)
	if err != nil {
		return fmt.Errorf("storage: rotating log: %w", err)
	}
	d.w = wal.NewWriter(nf, 0)
	d.walBytes.Store(0)
	d.floor.Store(floor)
	d.checkpoints.Add(1)
	return nil
}

// CloseDurability detaches and closes the log writer. The database remains
// usable in memory; mutations after the close are no longer logged.
func (db *Database) CloseDurability() error {
	d := db.dur
	if d == nil {
		return nil
	}
	db.dur = nil
	d.mu.Lock()
	defer d.mu.Unlock()
	// An abandoned (stalled) append+fsync goroutine may still hold the
	// writer; wait it out so Close never races the file handle.
	d.io.Wait()
	return d.w.Close()
}

// Durable reports whether a WAL is attached.
func (db *Database) Durable() bool { return db.dur != nil }

// DurabilityStats snapshots the durability counters; ok is false when the
// database is not durable.
func (db *Database) DurabilityStats() (stats DurabilityStats, ok bool) {
	d := db.dur
	if d == nil {
		return DurabilityStats{}, false
	}
	var werr string
	if f := d.failed.Load(); f != nil {
		werr = f.err.Error()
	}
	return DurabilityStats{
		Batches:     d.batches.Load(),
		Ops:         d.ops.Load(),
		Syncs:       d.syncs.Load(),
		Checkpoints: d.checkpoints.Load(),
		WALBytes:    d.walBytes.Load(),
		LastSeq:     d.seq.Load(),
		WriteError:  werr,
		Recovery:    d.report,
	}, true
}

// ---------------------------------------------------------------------------
// Statement batches
// ---------------------------------------------------------------------------

// BeginBatch opens a statement batch: ops logged until the matching
// CommitBatch flush as one WAL record (one unit of recovery atomicity).
// Batches nest; only the outermost commit writes. No-op when not durable.
func (db *Database) BeginBatch() {
	d := db.dur
	if d == nil {
		return
	}
	db.mu.Lock()
	d.depth++
	d.marks = append(d.marks, walMark{off: len(d.pending), ops: d.pendingOps})
	db.mu.Unlock()
}

// CommitBatch closes the innermost batch. At depth zero the accumulated ops
// flush and fsync; the error (e.g. a failed fsync) must reach the client
// before the statement is acknowledged.
func (db *Database) CommitBatch() error {
	return db.CommitBatchContext(nil)
}

// CommitBatchContext is CommitBatch with the request's context threaded
// down to the WAL flush: when ctx carries a deadline or cancellation, the
// append+fsync is bounded — a disk still stalled SyncGrace past the
// context's expiry surfaces as a *StallError instead of hanging the
// request forever. A nil or non-cancellable ctx waits indefinitely.
func (db *Database) CommitBatchContext(ctx context.Context) error {
	d := db.dur
	if d == nil {
		return nil
	}
	db.mu.Lock()
	if d.depth == 0 {
		db.mu.Unlock()
		return nil
	}
	d.depth--
	d.marks = d.marks[:len(d.marks)-1]
	still := d.depth > 0
	db.mu.Unlock()
	if still {
		return nil
	}
	return d.commit(db, ctx)
}

// DiscardBatch closes the innermost batch and rolls its ops out of the
// pending buffer — the log-side half of a rollback (the caller is
// responsible for undoing the in-memory mutations).
func (db *Database) DiscardBatch() {
	d := db.dur
	if d == nil {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if d.depth == 0 {
		return
	}
	m := d.marks[len(d.marks)-1]
	d.marks = d.marks[:len(d.marks)-1]
	d.depth--
	d.pending = d.pending[:m.off]
	d.pendingOps = m.ops
}

// autoCommit flushes the pending ops when no batch is open — the direct
// storage-call path (engine statements run inside explicit batches).
func (db *Database) autoCommit() error {
	d := db.dur
	if d == nil {
		return nil
	}
	return d.commit(db, nil)
}

// commit writes the pending ops as one framed, fsynced WAL record. It takes
// durability.mu (serializing flushes and rotation) and then db.mu just long
// enough to snapshot and clear the pending buffer — concurrent raw-API
// writers contend here instead of corrupting the buffer. An Append or Sync
// error latches the layer failed: the record may sit torn at the log's end,
// and appending past it would doom every later acknowledged statement to
// quarantine at recovery.
func (d *durability) commit(db *Database, ctx context.Context) error {
	d.mu.Lock()
	db.mu.Lock()
	if d.depth > 0 {
		db.mu.Unlock()
		d.mu.Unlock()
		return nil
	}
	if err := d.failedErr(); err != nil {
		// The applied-but-unflushed ops can never reach the log; drop them so
		// the buffer does not grow without bound while failing.
		d.pending = d.pending[:0]
		d.pendingOps = 0
		db.mu.Unlock()
		d.mu.Unlock()
		return err
	}
	if d.pendingOps == 0 {
		d.pending = d.pending[:0]
		db.mu.Unlock()
		d.mu.Unlock()
		return nil
	}
	seq := d.seq.Add(1)
	d.rec = appendUvarint(d.rec[:0], seq)
	d.rec = appendUvarint(d.rec, uint64(d.pendingOps))
	d.rec = append(d.rec, d.pending...)
	ops := d.pendingOps
	d.pending = d.pending[:0]
	d.pendingOps = 0
	// Freeze the batch's tables into a version at the WAL sequence while
	// still inside the db.mu window — the state the record describes cannot
	// drift before the fsync, because any later mutation queues behind
	// durability.mu for the NEXT record. The version installs only after the
	// fsync succeeds: a snapshot seq always names an acknowledged, durable
	// prefix of the log.
	snap, frozen := db.buildVersionLocked(seq)
	db.mu.Unlock()
	if err := d.walIO(ctx, d.rec); err != nil {
		d.latch(err)
		db.redirty(frozen)
		d.mu.Unlock()
		return err
	}
	if snap != nil {
		db.installVersion(snap)
	}
	if d.sink != nil {
		d.sink(seq, d.rec)
	}
	d.batches.Add(1)
	d.ops.Add(uint64(ops))
	d.syncs.Add(1)
	d.walBytes.Store(d.w.Offset())
	needCk := d.opts.CheckpointBytes > 0 && d.w.Offset() >= d.opts.CheckpointBytes
	d.mu.Unlock()
	if needCk {
		// Auto-checkpoint: racing writers may have opened a batch or queued
		// ops since the flush; skip and retry at a later commit.
		if err := db.Checkpoint(); err != nil && !errors.Is(err, errCheckpointBusy) {
			return err
		}
	}
	return nil
}

// walIO appends rec and fsyncs it, bounded by ctx when it can expire. The
// unbounded path runs inline (no goroutine, no allocation); the bounded
// path runs the IO on a tracked goroutine and waits for whichever comes
// first — the result, or the context plus a grace window. A sync that
// completes inside the grace commits normally even though the request gave
// up: past the append the record is applied state, and the loss-free
// contract is commit-or-no-trace, never half of each. Only a genuine stall
// returns a *StallError; the caller latches, so the orphaned goroutine is
// the last thing that ever touches the writer before CloseDurability waits
// it out.
func (d *durability) walIO(ctx context.Context, rec []byte) error {
	appendSync := func() error {
		if err := d.w.Append(rec); err != nil {
			return fmt.Errorf("storage: wal append: %w; writes are rejected until restart", err)
		}
		if err := d.w.Sync(); err != nil {
			return fmt.Errorf("storage: wal fsync: %w; writes are rejected until restart", err)
		}
		return nil
	}
	if ctx == nil || ctx.Done() == nil {
		return appendSync()
	}
	ch := make(chan error, 1)
	d.io.Add(1)
	go func() {
		defer d.io.Done()
		ch <- appendSync()
	}()
	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
	}
	grace := d.opts.SyncGrace
	if grace <= 0 {
		grace = DefaultSyncGrace
	}
	t := time.NewTimer(grace)
	defer t.Stop()
	select {
	case err := <-ch:
		return err
	case <-t.C:
		return &StallError{Op: "wal fsync", Grace: grace, Err: ctx.Err()}
	}
}

// ---------------------------------------------------------------------------
// Replay application (position-based, mirrors the logged physical ops)
// ---------------------------------------------------------------------------

// applyDeletePositions re-runs a logged DELETE: positions are ascending
// pre-compaction row indexes, matched against the same scan Delete performs.
func (db *Database) applyDeletePositions(rel string, positions []int) error {
	k := 0
	db.mu.Lock()
	n, _, err := db.deleteLocked(rel, func(i int, _ Tuple) bool {
		if k < len(positions) && positions[k] == i {
			k++
			return true
		}
		return false
	})
	db.mu.Unlock()
	if err != nil {
		return err
	}
	if n != len(positions) {
		return fmt.Errorf("storage: wal replay: delete of %d rows matched %d", len(positions), n)
	}
	return nil
}

// applyUpdateRows re-runs a logged UPDATE: each (position, replacement) pair
// overwrites the same physical row the original statement did.
func (db *Database) applyUpdateRows(rel string, rows []updatedRow) error {
	k := 0
	db.mu.Lock()
	n, err := db.updateLocked(rel,
		func(i int, _ Tuple) bool {
			return k < len(rows) && rows[k].pos == i
		},
		func(Tuple) Tuple {
			repl := rows[k].repl
			k++
			return repl
		})
	db.mu.Unlock()
	if err != nil {
		return err
	}
	if n != len(rows) {
		return fmt.Errorf("storage: wal replay: update of %d rows matched %d", len(rows), n)
	}
	return nil
}

// totalRows sums row counts across tables.
func (db *Database) totalRows() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	sum := 0
	for _, t := range db.tables {
		sum += t.rows
	}
	return sum
}
