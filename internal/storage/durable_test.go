package storage

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/value"
	"repro/internal/wal"
)

// durSchema extends the shared test schema with a relation covering Float
// and Bool columns, so checkpoints serialize every value kind.
func durSchema(t *testing.T) *catalog.Schema {
	t.Helper()
	s := testSchema(t)
	if err := s.AddRelation(&catalog.Relation{
		Name: "RATINGS",
		Attributes: []*catalog.Attribute{
			{Name: "id", Type: catalog.Int, NotNull: true},
			{Name: "score", Type: catalog.Float},
			{Name: "fresh", Type: catalog.Bool},
			{Name: "note", Type: catalog.Text},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func newDurDB(t *testing.T) *Database {
	t.Helper()
	db, err := NewDatabase(durSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// dumpAll renders every table as CSV — the observable-contents fingerprint
// the recovery tests compare.
func dumpAll(t *testing.T, db *Database) string {
	t.Helper()
	var sb strings.Builder
	for _, name := range db.TableNames() {
		sb.WriteString("== " + name + "\n")
		if err := db.DumpCSV(name, &sb); err != nil {
			t.Fatalf("dump %s: %v", name, err)
		}
	}
	return sb.String()
}

// statsAll fingerprints the planner-visible statistics.
func statsAll(t *testing.T, db *Database) string {
	t.Helper()
	var sb strings.Builder
	for _, name := range db.TableNames() {
		st := db.Table(name).Stats()
		fmt.Fprintf(&sb, "%s rows=%d zones=%d\n", name, st.Rows, st.Zones)
		for i, a := range st.Attrs {
			fmt.Fprintf(&sb, "  %d nonNull=%d distinct=%d min=%s max=%s\n",
				i, a.NonNull, a.Distinct, a.Min.String(), a.Max.String())
		}
	}
	return sb.String()
}

// zonesAll fingerprints the zone maps (bounds, null counts, sortedness).
func zonesAll(t *testing.T, db *Database) string {
	t.Helper()
	var sb strings.Builder
	for _, name := range db.TableNames() {
		tbl := db.Table(name)
		for i := 0; i < len(tbl.rel.Attributes); i++ {
			col := tbl.Col(i)
			fmt.Fprintf(&sb, "%s.%d zones=%d synced=%v", name, i, col.ZoneCount(), col.ZonesSynced(tbl.Len()))
			for z := 0; z < col.ZoneCount(); z++ {
				fmt.Fprintf(&sb, " [n=%d s=%v", col.ZoneNulls(z), col.ZoneSorted(z))
				if lo, hi, ok := col.ZoneIntBounds(z); ok {
					fmt.Fprintf(&sb, " i%d:%d", lo, hi)
				}
				if lo, hi, ok := col.ZoneFloatBounds(z); ok {
					fmt.Fprintf(&sb, " f%g:%g nan=%v", lo, hi, col.ZoneHasNaN(z))
				}
				if lo, hi, ok := col.ZoneTextBounds(z); ok {
					fmt.Fprintf(&sb, " t%q:%q", lo, hi)
				}
				sb.WriteString("]")
			}
			if base, delta, ok := col.FORInts(); ok {
				fmt.Fprintf(&sb, " for=%d/%d", len(base), len(delta))
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

func fingerprint(t *testing.T, db *Database) string {
	t.Helper()
	return dumpAll(t, db) + statsAll(t, db) + zonesAll(t, db)
}

// seedVariety fills the database with every serialization edge the segment
// format has to carry: NULLs everywhere, NaN and infinities, negative dates,
// dictionary churn (dead entries), bools, and enough int rows in a narrow
// range to keep the frame-of-reference encoding active.
func seedVariety(t *testing.T, db *Database) {
	t.Helper()
	for i := 0; i < 6; i++ {
		var bdate value.Value = value.NewNull()
		if i%2 == 0 {
			bdate = value.NewDateDays(int64(-4000 + i*1000))
		}
		ins(t, db, "DIRECTOR", value.NewInt(int64(i)), value.NewText(fmt.Sprintf("director-%d", i%3)), bdate)
	}
	// FOR stays on: values climb by 1 every 16 rows, so every zone spans
	// well under a byte's worth of delta.
	for i := 0; i < 5000; i++ {
		var title value.Value = value.NewNull()
		if i%7 != 0 {
			title = value.NewText(fmt.Sprintf("title-%d", i%11))
		}
		ins(t, db, "MOVIES", value.NewInt(int64(i)), title, value.NewInt(int64(1900+(i>>4))), value.NewInt(int64(i%6)))
	}
	scores := []value.Value{
		value.NewFloat(math.NaN()), value.NewFloat(math.Inf(1)), value.NewFloat(math.Inf(-1)),
		value.NewFloat(-0.0), value.NewFloat(3.25), value.NewNull(),
	}
	for i, s := range scores {
		ins(t, db, "RATINGS", value.NewInt(int64(i)), s, value.NewBool(i%2 == 0), value.NewText(fmt.Sprintf("note-%d", i)))
	}
	// Dictionary churn: retire every title-3 so the vocabulary holds dead
	// entries when the checkpoint writes.
	if _, err := db.Delete("MOVIES", func(tup Tuple) bool {
		return !tup[1].IsNull() && tup[1].Text() == "title-3"
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Table("MOVIES").CreateIndex("movies_did", "did"); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	fs := wal.NewMemFS()
	db := newDurDB(t)
	seedVariety(t, db)
	if _, err := db.EnableDurability(fs, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, db)

	db2 := newDurDB(t)
	report, err := db2.EnableDurability(fs, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("recovery not clean: %+v", report)
	}
	if got := fingerprint(t, db2); got != want {
		t.Errorf("reopened database diverges:\n--- want\n%s\n--- got\n%s", want, got)
	}
	// The secondary index came back and probes correctly.
	rows, err := db2.Table("MOVIES").LookupIndex("movies_did", value.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Error("recovered index returned nothing")
	}
	for _, r := range rows {
		if r[3].Int() != 2 {
			t.Errorf("index row has did=%s", r[3])
		}
	}
}

func TestReopenAfterDML(t *testing.T) {
	fs := wal.NewMemFS()
	db := newDurDB(t)
	if _, err := db.EnableDurability(fs, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	// A mixed workload through the public API, all after the initial
	// (empty) checkpoint — everything must come back from the WAL alone.
	for i := 0; i < 50; i++ {
		ins(t, db, "DIRECTOR", value.NewInt(int64(i)), value.NewText(fmt.Sprintf("d%d", i)), value.NewNull())
	}
	if _, err := db.Delete("DIRECTOR", func(tup Tuple) bool { return tup[0].Int()%5 == 0 }); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Update("DIRECTOR",
		func(tup Tuple) bool { return tup[0].Int()%3 == 0 },
		func(tup Tuple) Tuple { tup[1] = value.NewText("updated-" + tup[1].Text()); return tup }); err != nil {
		t.Fatal(err)
	}
	if err := db.Table("DIRECTOR").CreateIndex("dir_name", "name"); err != nil {
		t.Fatal(err)
	}
	csv := "id,title,year,did\n100,CSV Movie,1999,3\n101,Another,2001,6\n"
	if n, err := db.LoadCSV("MOVIES", strings.NewReader(csv)); err != nil || n != 2 {
		t.Fatalf("LoadCSV: n=%d err=%v", n, err)
	}
	want := fingerprint(t, db)

	db2 := newDurDB(t)
	report, err := db2.EnableDurability(fs, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() || report.ReplayedBatches == 0 {
		t.Fatalf("report: %+v", report)
	}
	if got := fingerprint(t, db2); got != want {
		t.Errorf("replayed database diverges:\n--- want\n%s\n--- got\n%s", want, got)
	}
	if _, err := db2.Table("DIRECTOR").LookupIndex("dir_name", value.NewText("updated-d3")); err != nil {
		t.Errorf("replayed index: %v", err)
	}
}

func TestPartialBatchPersists(t *testing.T) {
	fs := wal.NewMemFS()
	db := newDurDB(t)
	if _, err := db.EnableDurability(fs, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	// Statement batch where the 4th row hits a duplicate key: the three
	// applied rows stay in the table (storage semantics) and must therefore
	// be in the log too.
	db.BeginBatch()
	var insErr error
	for _, id := range []int64{1, 2, 3, 2} {
		if insErr = db.Insert("DIRECTOR", Tuple{value.NewInt(id), value.NewText("x"), value.NewNull()}); insErr != nil {
			break
		}
	}
	if insErr == nil {
		t.Fatal("duplicate key accepted")
	}
	if err := db.CommitBatch(); err != nil {
		t.Fatal(err)
	}
	if got := db.Table("DIRECTOR").Len(); got != 3 {
		t.Fatalf("in-memory rows = %d", got)
	}

	db2 := newDurDB(t)
	if _, err := db2.EnableDurability(fs, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := db2.Table("DIRECTOR").Len(); got != 3 {
		t.Errorf("recovered rows = %d, want the 3 applied before the failure", got)
	}
}

func TestFsyncFailureSurfaces(t *testing.T) {
	mem := wal.NewMemFS()
	ffs := wal.NewFaultFS(mem)
	db := newDurDB(t)
	if _, err := db.EnableDurability(ffs, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	ins(t, db, "DIRECTOR", value.NewInt(1), value.NewText("ok"), value.NewNull())
	ffs.FailSyncsAfter(0)
	err := db.Insert("DIRECTOR", Tuple{value.NewInt(2), value.NewText("lost"), value.NewNull()})
	if !errors.Is(err, wal.ErrInjectedSync) {
		t.Fatalf("insert during fsync failure returned %v", err)
	}
	// The failure latches: clearing the fault does not resurrect the writer,
	// because the unsynced record's durability is unknown.
	ffs.ClearFaults()
	if err := db.Insert("DIRECTOR", Tuple{value.NewInt(3), value.NewText("rejected"), value.NewNull()}); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("insert after fsync failure returned %v, want ErrWALFailed", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("checkpoint after fsync failure returned %v, want ErrWALFailed", err)
	}
	st, ok := db.DurabilityStats()
	if !ok || st.WriteError == "" {
		t.Fatalf("stats do not surface the latched failure: %+v", st)
	}
	// Restart recovers: the in-memory disk kept both records (only the sync
	// failed), which is fine — statement 2 was never acknowledged, and an
	// unacknowledged statement may go either way.
	db2 := newDurDB(t)
	if _, err := db2.EnableDurability(mem, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := db2.Table("DIRECTOR").Len(); got != 2 {
		t.Errorf("recovered rows = %d", got)
	}
}

// TestAppendFailureLatches is the review's core scenario: an append that
// tears mid-frame (ENOSPC, I/O error) must latch the layer failed. If writes
// kept appending past the torn frame, they would be acknowledged as durable
// and then quarantined wholesale at recovery — silent loss of acked
// statements.
func TestAppendFailureLatches(t *testing.T) {
	mem := wal.NewMemFS()
	ffs := wal.NewFaultFS(mem)
	db := newDurDB(t)
	if _, err := db.EnableDurability(ffs, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		ins(t, db, "DIRECTOR", value.NewInt(i), value.NewText("acked"), value.NewNull())
	}
	ffs.FailWritesAfter(0)
	err := db.Insert("DIRECTOR", Tuple{value.NewInt(4), value.NewText("torn"), value.NewNull()})
	if !errors.Is(err, wal.ErrInjectedWrite) {
		t.Fatalf("insert during append failure returned %v", err)
	}
	ffs.ClearFaults()

	// Every further write is rejected — even though the disk works again.
	if err := db.Insert("DIRECTOR", Tuple{value.NewInt(5), value.NewText("after"), value.NewNull()}); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("insert after append failure returned %v, want ErrWALFailed", err)
	}
	if _, err := db.Delete("DIRECTOR", func(Tuple) bool { return true }); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("delete after append failure returned %v, want ErrWALFailed", err)
	}
	if _, err := db.Update("DIRECTOR", func(Tuple) bool { return true }, func(tup Tuple) Tuple { return tup }); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("update after append failure returned %v, want ErrWALFailed", err)
	}
	if _, err := db.LoadCSV("DIRECTOR", strings.NewReader("id,name,bdate\n9,x,\n")); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("load after append failure returned %v, want ErrWALFailed", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrWALFailed) {
		t.Fatalf("checkpoint after append failure returned %v, want ErrWALFailed", err)
	}
	// Row 4 applied in memory before the flush failed; rows 5+ were rejected
	// before touching the table.
	if got := db.Table("DIRECTOR").Len(); got != 4 {
		t.Errorf("in-memory rows = %d", got)
	}

	// Restart: the three acknowledged statements recover, the torn frame
	// quarantines, and nothing after it was ever appended.
	db2 := newDurDB(t)
	report, err := db2.EnableDurability(mem, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Clean() {
		t.Error("torn append recovered clean")
	}
	if report.ReplayedBatches != 3 || report.LostBatches != 1 {
		t.Errorf("replayed=%d lost=%d", report.ReplayedBatches, report.LostBatches)
	}
	if got := db2.Table("DIRECTOR").Len(); got != 3 {
		t.Errorf("recovered rows = %d, want the 3 acknowledged", got)
	}
	// The recovered database accepts writes again.
	ins(t, db2, "DIRECTOR", value.NewInt(10), value.NewText("healthy"), value.NewNull())
}

func TestAutoCheckpoint(t *testing.T) {
	fs := wal.NewMemFS()
	db := newDurDB(t)
	if _, err := db.EnableDurability(fs, DurableOptions{CheckpointBytes: 512}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		ins(t, db, "DIRECTOR", value.NewInt(int64(i)), value.NewText(fmt.Sprintf("name-%d", i)), value.NewNull())
	}
	st, ok := db.DurabilityStats()
	if !ok {
		t.Fatal("not durable")
	}
	// The adoption checkpoint plus at least one triggered by log growth.
	if st.Checkpoints < 2 {
		t.Fatalf("checkpoints = %d, auto-checkpoint never fired", st.Checkpoints)
	}
	if st.WALBytes >= 10*512 {
		t.Fatalf("wal grew to %d bytes despite the 512-byte ceiling", st.WALBytes)
	}
	db2 := newDurDB(t)
	if _, err := db2.EnableDurability(fs, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := db2.Table("DIRECTOR").Len(); got != 200 {
		t.Errorf("recovered rows = %d", got)
	}
}

func TestQuarantineTornTail(t *testing.T) {
	fs := wal.NewMemFS()
	db := newDurDB(t)
	if _, err := db.EnableDurability(fs, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ins(t, db, "DIRECTOR", value.NewInt(int64(i)), value.NewText(fmt.Sprintf("d%d", i)), value.NewNull())
	}
	logBytes := fs.Bytes(WALFileName)
	records, tail := wal.Scan(logBytes)
	if tail != nil || len(records) != 10 {
		t.Fatalf("log: %d records, tail %v", len(records), tail)
	}
	// Crash: the last record's bytes half-reached the disk.
	crashed := fs.Clone()
	crashed.Truncate(WALFileName, records[9].Off+3)

	db2 := newDurDB(t)
	report, err := db2.EnableDurability(crashed, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Clean() {
		t.Fatal("torn log reported clean")
	}
	if report.ReplayedBatches != 9 || report.LostBatches != 1 {
		t.Errorf("replayed=%d lost=%d", report.ReplayedBatches, report.LostBatches)
	}
	if got := db2.Table("DIRECTOR").Len(); got != 9 {
		t.Errorf("rows = %d, want the 9 committed", got)
	}
	if report.CorruptFile != CorruptFileName || report.QuarantinedBytes != 3 {
		t.Errorf("quarantine: %+v", report)
	}
	sidecar := crashed.Bytes(CorruptFileName)
	if len(sidecar) != 3 {
		t.Errorf("sidecar holds %d bytes", len(sidecar))
	}
	// The rewritten log is clean and ends exactly at the valid prefix.
	rewritten := crashed.Bytes(WALFileName)
	if recs, tl := wal.Scan(rewritten); tl != nil || len(recs) != 0 {
		// The reopen checkpointed-on-boot only when no checkpoint existed;
		// here one did, so the log still holds the 9 records.
		if tl != nil || len(recs) != 9 {
			t.Errorf("rewritten log: %d records, tail %v", len(recs), tl)
		}
	}
	// A third boot replays the rewritten log without complaint.
	db3 := newDurDB(t)
	report3, err := db3.EnableDurability(crashed, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report3.Clean() {
		t.Errorf("second recovery not clean: %+v", report3)
	}
	if fingerprint(t, db3) != fingerprint(t, db2) {
		t.Error("second recovery diverges from first")
	}
}

func TestBitFlipQuarantine(t *testing.T) {
	fs := wal.NewMemFS()
	db := newDurDB(t)
	if _, err := db.EnableDurability(fs, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ins(t, db, "DIRECTOR", value.NewInt(int64(i)), value.NewText("n"), value.NewNull())
	}
	records, _ := wal.Scan(fs.Bytes(WALFileName))
	// Flip a payload bit of the middle record: records 2..4 become the tail.
	crashed := fs.Clone()
	crashed.FlipBit(WALFileName, records[2].Off+9, 0x10)
	db2 := newDurDB(t)
	report, err := db2.EnableDurability(crashed, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.ReplayedBatches != 2 || report.LostBatches != 3 {
		t.Errorf("replayed=%d lost=%d (want 2/3)", report.ReplayedBatches, report.LostBatches)
	}
	if report.TailReason != "checksum mismatch" {
		t.Errorf("reason %q", report.TailReason)
	}
	if got := db2.Table("DIRECTOR").Len(); got != 2 {
		t.Errorf("rows = %d", got)
	}
}

func TestShortReadSalvagesPrefix(t *testing.T) {
	mem := wal.NewMemFS()
	db := newDurDB(t)
	if _, err := db.EnableDurability(mem, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		ins(t, db, "DIRECTOR", value.NewInt(int64(i)), value.NewText("s"), value.NewNull())
	}
	records, _ := wal.Scan(mem.Bytes(WALFileName))
	ffs := wal.NewFaultFS(mem.Clone())
	// Readers of the log see only the first five records and then an I/O
	// error — recovery must treat it like a torn log, not fail.
	ffs.ShortRead(WALFileName, records[5].Off)
	db2 := newDurDB(t)
	report, err := db2.EnableDurability(ffs, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.ReplayedBatches != 5 {
		t.Errorf("replayed %d, want 5", report.ReplayedBatches)
	}
	if report.Clean() {
		t.Error("short read reported clean")
	}
	if got := db2.Table("DIRECTOR").Len(); got != 5 {
		t.Errorf("rows = %d", got)
	}
}

// TestCheckpointWALOverlap simulates the crash window between the checkpoint
// rename and the log truncation: the checkpoint already covers every record
// still sitting in the log, and replay must skip them all.
func TestCheckpointWALOverlap(t *testing.T) {
	fs := wal.NewMemFS()
	db := newDurDB(t)
	if _, err := db.EnableDurability(fs, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		ins(t, db, "DIRECTOR", value.NewInt(int64(i)), value.NewText(fmt.Sprintf("d%d", i)), value.NewNull())
	}
	oldLog := fs.Bytes(WALFileName)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, db)
	// Un-truncate the log: the disk now looks as if the crash hit right
	// after the rename.
	f, err := fs.Create(WALFileName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(oldLog); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2 := newDurDB(t)
	report, err := db2.EnableDurability(fs, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.SkippedBatches != 7 || report.ReplayedBatches != 0 {
		t.Errorf("skipped=%d replayed=%d", report.SkippedBatches, report.ReplayedBatches)
	}
	if got := fingerprint(t, db2); got != want {
		t.Errorf("overlap recovery diverges:\n--- want\n%s\n--- got\n%s", want, got)
	}
	// New writes after recovery continue the sequence without clashing.
	ins(t, db2, "DIRECTOR", value.NewInt(100), value.NewText("after"), value.NewNull())
	db3 := newDurDB(t)
	if _, err := db3.EnableDurability(fs, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := db3.Table("DIRECTOR").Len(); got != 8 {
		t.Errorf("rows = %d", got)
	}
}

func TestCorruptCheckpointRefuses(t *testing.T) {
	fs := wal.NewMemFS()
	db := newDurDB(t)
	seedVariety(t, db)
	if _, err := db.EnableDurability(fs, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(fs.Bytes(CheckpointFileName)); off += 97 {
		crashed := fs.Clone()
		crashed.FlipBit(CheckpointFileName, off, 0x04)
		db2 := newDurDB(t)
		if _, err := db2.EnableDurability(crashed, DurableOptions{}); err == nil {
			t.Fatalf("flip at %d: corrupt checkpoint accepted", off)
		}
	}
	// Truncated checkpoints refuse too (never panic).
	for _, cut := range []int{0, 1, 7, 100} {
		crashed := fs.Clone()
		crashed.Truncate(CheckpointFileName, cut)
		db2 := newDurDB(t)
		if _, err := db2.EnableDurability(crashed, DurableOptions{}); err == nil {
			t.Fatalf("cut at %d: truncated checkpoint accepted", cut)
		}
	}
}

func TestEnableDurabilityRejectsNonEmptyWithState(t *testing.T) {
	fs := wal.NewMemFS()
	db := newDurDB(t)
	if _, err := db.EnableDurability(fs, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	ins(t, db, "DIRECTOR", value.NewInt(1), value.NewText("a"), value.NewNull())

	seeded := newDurDB(t)
	ins(t, seeded, "DIRECTOR", value.NewInt(2), value.NewText("b"), value.NewNull())
	if _, err := seeded.EnableDurability(fs, DurableOptions{}); err == nil {
		t.Fatal("seeded database adopted a directory with existing state")
	}
	if _, err := db.EnableDurability(fs, DurableOptions{}); err == nil {
		t.Fatal("double enable accepted")
	}
}

func TestLoadCSVRollback(t *testing.T) {
	fs := wal.NewMemFS()
	db := newDurDB(t)
	if _, err := db.EnableDurability(fs, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	ins(t, db, "DIRECTOR", value.NewInt(1), value.NewText("keep"), value.NewNull())
	before := fingerprint(t, db)

	// Row 3 duplicates row 1's primary key: the whole load must roll back.
	bad := "id,name,bdate\n10,a,\n11,b,\n10,c,\n"
	n, err := db.LoadCSV("DIRECTOR", strings.NewReader(bad))
	if err == nil {
		t.Fatal("duplicate-key CSV loaded")
	}
	if n != 0 {
		t.Errorf("failed load reported %d rows", n)
	}
	if got := fingerprint(t, db); got != before {
		t.Errorf("failed load left residue:\n--- before\n%s\n--- after\n%s", before, got)
	}
	// A value that does not parse rejects before any mutation.
	if _, err := db.LoadCSV("DIRECTOR", strings.NewReader("id,name,bdate\nnot-an-int,a,\n")); err == nil {
		t.Fatal("unparseable CSV loaded")
	}
	if got := fingerprint(t, db); got != before {
		t.Error("parse-failure load left residue")
	}
	// The log agrees: a reopen sees only the surviving row.
	db2 := newDurDB(t)
	if _, err := db2.EnableDurability(fs, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := db2.Table("DIRECTOR").Len(); got != 1 {
		t.Errorf("recovered rows = %d, want 1", got)
	}
	// And a good load after the failures both applies and persists.
	if n, err := db.LoadCSV("DIRECTOR", strings.NewReader("id,name,bdate\n20,x,\n21,y,1950-01-01\n")); err != nil || n != 2 {
		t.Fatalf("good load: n=%d err=%v", n, err)
	}
	db3 := newDurDB(t)
	if _, err := db3.EnableDurability(fs, DurableOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := db3.Table("DIRECTOR").Len(); got != 3 {
		t.Errorf("recovered rows = %d, want 3", got)
	}
}

func TestDurabilityStatsCounters(t *testing.T) {
	fs := wal.NewMemFS()
	db := newDurDB(t)
	if _, ok := db.DurabilityStats(); ok {
		t.Fatal("in-memory database reported durability stats")
	}
	report, err := db.EnableDurability(fs, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Fresh {
		t.Errorf("fresh directory not reported fresh: %+v", report)
	}
	for i := 0; i < 4; i++ {
		ins(t, db, "DIRECTOR", value.NewInt(int64(i)), value.NewText("c"), value.NewNull())
	}
	st, ok := db.DurabilityStats()
	if !ok {
		t.Fatal("not durable")
	}
	if st.Batches != 4 || st.Ops != 4 || st.Syncs != 4 || st.LastSeq != 4 {
		t.Errorf("counters: %+v", st)
	}
	if st.Checkpoints != 1 || st.WALBytes == 0 {
		t.Errorf("checkpoints=%d walBytes=%d", st.Checkpoints, st.WALBytes)
	}
	if st.Recovery != report {
		t.Error("stats lost the recovery report")
	}
	if err := db.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.DurabilityStats(); ok {
		t.Error("stats survive close")
	}
}

// craftRecord frames seq + opCount + ops as one WAL record and appends it to
// the log, bypassing the durability layer — the forgery the atomicity tests
// replay.
func craftRecord(t *testing.T, fs wal.FS, seq uint64, opCount int, ops []byte) {
	t.Helper()
	payload := appendUvarint(nil, seq)
	payload = appendUvarint(payload, uint64(opCount))
	payload = append(payload, ops...)
	f, err := fs.OpenAppend(WALFileName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(wal.AppendRecord(nil, payload)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPartialBatchReplayAtomicity plants a record that checksums but fails
// mid-batch — first on decode, then on apply. The record is one statement
// batch, the unit of recovery atomicity: none of its ops may survive, even
// the ones that applied before the failure.
func TestPartialBatchReplayAtomicity(t *testing.T) {
	setup := func(t *testing.T) *wal.MemFS {
		fs := wal.NewMemFS()
		db := newDurDB(t)
		if _, err := db.EnableDurability(fs, DurableOptions{}); err != nil {
			t.Fatal(err)
		}
		ins(t, db, "DIRECTOR", value.NewInt(1), value.NewText("a"), value.NewNull())
		ins(t, db, "DIRECTOR", value.NewInt(2), value.NewText("b"), value.NewNull())
		if err := db.CloseDurability(); err != nil {
			t.Fatal(err)
		}
		return fs
	}
	goodInsert := func(id int64) []byte {
		var sd durability
		sd.logInsert("DIRECTOR", Tuple{value.NewInt(id), value.NewText("phantom"), value.NewNull()})
		return sd.pending
	}
	check := func(t *testing.T, fs *wal.MemFS, want string) {
		db2 := newDurDB(t)
		report, err := db2.EnableDurability(fs, DurableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if report.Clean() || report.LostBatches != 1 {
			t.Errorf("report: %+v", report)
		}
		if report.ReplayedBatches != 2 {
			t.Errorf("replayed = %d, want the 2 good records", report.ReplayedBatches)
		}
		if got := db2.Table("DIRECTOR").Len(); got != 2 {
			t.Errorf("rows = %d: a partially applied batch survived recovery", got)
		}
		if rows, _ := db2.Table("DIRECTOR").LookupPK(Tuple{value.NewInt(50)}); rows != nil {
			t.Error("the broken record's first op survived recovery")
		}
		if got := fingerprint(t, db2); got != want {
			t.Errorf("rolled-back state diverges from the good prefix:\n--- want\n%s\n--- got\n%s", want, got)
		}
	}
	// The expected post-recovery state: exactly the two committed inserts.
	wantOf := func(t *testing.T, fs *wal.MemFS) string {
		db := newDurDB(t)
		if _, err := db.EnableDurability(fs, DurableOptions{}); err != nil {
			t.Fatal(err)
		}
		return fingerprint(t, db)
	}

	t.Run("decode failure mid-batch", func(t *testing.T) {
		fs := setup(t)
		want := wantOf(t, fs.Clone())
		// Two ops promised: a valid insert, then an unknown op byte.
		craftRecord(t, fs, 3, 2, append(goodInsert(50), 0xEE))
		check(t, fs, want)
	})
	t.Run("apply failure mid-batch", func(t *testing.T) {
		fs := setup(t)
		want := wantOf(t, fs.Clone())
		// A valid insert, then an insert that collides with committed row 1.
		craftRecord(t, fs, 3, 2, append(goodInsert(50), goodInsert(1)...))
		check(t, fs, want)
	})
}

// TestConcurrentRawWriters hammers the raw Insert API from several
// goroutines on a durable database with a tiny checkpoint threshold, so
// commits, buffer snapshots, and log rotations interleave. Run under -race
// in CI, it enforces what used to be only a comment: the pending buffer and
// the writer survive concurrent raw-API use.
func TestConcurrentRawWriters(t *testing.T) {
	fs := wal.NewMemFS()
	db := newDurDB(t)
	if _, err := db.EnableDurability(fs, DurableOptions{CheckpointBytes: 2048}); err != nil {
		t.Fatal(err)
	}
	const writers, each = 4, 25
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < each; i++ {
				id := int64(w*each + i)
				if err := db.Insert("DIRECTOR", Tuple{value.NewInt(id), value.NewText("c"), value.NewNull()}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Table("DIRECTOR").Len(); got != writers*each {
		t.Fatalf("rows = %d, want %d", got, writers*each)
	}
	st, ok := db.DurabilityStats()
	if !ok || st.Ops != writers*each {
		t.Fatalf("stats: ok=%v ops=%d", ok, st.Ops)
	}
	if err := db.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	// Every acknowledged insert is recoverable.
	db2 := newDurDB(t)
	report, err := db2.EnableDurability(fs, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("recovery not clean: %+v", report)
	}
	if got := db2.Table("DIRECTOR").Len(); got != writers*each {
		t.Errorf("recovered rows = %d, want %d", got, writers*each)
	}
}
