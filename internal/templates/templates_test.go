package templates

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseAndInstantiate(t *testing.T) {
	tpl, err := Parse(`DNAME + " was born" + " in " + BLOCATION`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tpl.Instantiate(MapBinding{
		"DNAME":     "Woody Allen",
		"BLOCATION": "Brooklyn, New York, USA",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "Woody Allen was born in Brooklyn, New York, USA"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestBornOnTemplate(t *testing.T) {
	tpl := MustParse(`DNAME + " was born" + " on " + BDATE`)
	got, err := tpl.Instantiate(MapBinding{"DNAME": "Woody Allen", "BDATE": "December 1, 1935"})
	if err != nil || got != "Woody Allen was born on December 1, 1935" {
		t.Errorf("got %q, %v", got, err)
	}
}

func TestCaseInsensitiveBinding(t *testing.T) {
	tpl := MustParse(`DNAME + "!"`)
	got, err := tpl.Instantiate(MapBinding{"dname": "x"})
	if err != nil || got != "x!" {
		t.Errorf("got %q, %v", got, err)
	}
}

func TestQualifiedFieldNames(t *testing.T) {
	tpl := MustParse(`"the " + MOVIE.YEAR + " of a " + MOVIE.TITLE`)
	got, err := tpl.Instantiate(MapBinding{"MOVIE.YEAR": "2005", "MOVIE.TITLE": "Match Point"})
	if err != nil || got != "the 2005 of a Match Point" {
		t.Errorf("got %q, %v", got, err)
	}
}

func TestFields(t *testing.T) {
	tpl := MustParse(`A + " x " + B + A`)
	f := tpl.Fields()
	if len(f) != 2 || f[0] != "A" || f[1] != "B" {
		t.Errorf("Fields = %v", f)
	}
}

func TestStrictMissingField(t *testing.T) {
	tpl := MustParse(`A + B`)
	if _, err := tpl.Instantiate(MapBinding{"A": "x"}); err == nil {
		t.Error("missing field accepted in strict mode")
	}
	if got := tpl.InstantiateLenient(MapBinding{"A": "x"}); got != "x" {
		t.Errorf("lenient = %q", got)
	}
}

func TestHasAllFields(t *testing.T) {
	tpl := MustParse(`A + " " + B`)
	if !tpl.HasAllFields(MapBinding{"A": "1", "B": "2"}) {
		t.Error("complete binding rejected")
	}
	if tpl.HasAllFields(MapBinding{"A": "1"}) {
		t.Error("incomplete binding accepted")
	}
	if tpl.HasAllFields(MapBinding{"A": "1", "B": ""}) {
		t.Error("empty value counts as missing")
	}
}

func TestEscapes(t *testing.T) {
	tpl := MustParse(`"say \"hi\" and \\ done"`)
	got, err := tpl.Instantiate(MapBinding{})
	if err != nil || got != `say "hi" and \ done` {
		t.Errorf("got %q, %v", got, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		`"unterminated`,
		`A +`,
		`A B`,
		`+ A`,
		`A + !`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

// TestMovieListTemplate reproduces the paper's MOVIE_LIST definition and the
// exact narrative fragment it generates for Woody Allen's filmography.
func TestMovieListTemplate(t *testing.T) {
	lt, err := ParseList(`[i < arityOf(TITLE)] { TITLE[i] + " (" + YEAR[i] + "), " } [i = arityOf(TITLE)] { "and " + TITLE[i] + " (" + YEAR[i] + ")." }`)
	if err != nil {
		t.Fatal(err)
	}
	rows := []Binding{
		MapBinding{"TITLE": "Match Point", "YEAR": "2005"},
		MapBinding{"TITLE": "Melinda and Melinda", "YEAR": "2004"},
		MapBinding{"TITLE": "Anything Else", "YEAR": "2003"},
	}
	got, err := lt.Instantiate(rows)
	if err != nil {
		t.Fatal(err)
	}
	want := "Match Point (2005), Melinda and Melinda (2004), and Anything Else (2003)."
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestListSingleRow(t *testing.T) {
	lt := MustParseList(`[i < arityOf(T)] { T[i] + ", " } [i = arityOf(T)] { "and " + T[i] }`)
	got, err := lt.Instantiate([]Binding{MapBinding{"T": "only"}})
	if err != nil || got != "and only" {
		t.Errorf("single row = %q, %v", got, err)
	}
	got, err = lt.Instantiate(nil)
	if err != nil || got != "" {
		t.Errorf("empty rows = %q, %v", got, err)
	}
}

func TestListWithoutFinalClause(t *testing.T) {
	lt, err := ParseList(`[i < arityOf(T)] { T[i] + "; " }`)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := lt.Instantiate([]Binding{MapBinding{"T": "a"}, MapBinding{"T": "b"}})
	if got != "a; b; " {
		t.Errorf("got %q", got)
	}
}

func TestListParseErrors(t *testing.T) {
	bad := []string{
		"",
		"no braces here",
		"[i < arityOf(T)] { unterminated",
		"{ body without bound }",
		`[i < arityOf(T)] { T[i] } trailing { x }`,
		`[i < arityOf(T)] { T[i] } [i = arityOf(T)] { T[i] } extra`,
		`[i < arityOf(T)] { + bad }`,
	}
	for _, src := range bad {
		if _, err := ParseList(src); err == nil {
			t.Errorf("ParseList(%q) accepted", src)
		}
	}
}

func TestListRowError(t *testing.T) {
	lt := MustParseList(`[i < arityOf(T)] { T[i] }`)
	if _, err := lt.Instantiate([]Binding{MapBinding{"X": "1"}}); err == nil {
		t.Error("unbound list field accepted")
	}
}

func TestSource(t *testing.T) {
	src := `A + " b"`
	if MustParse(src).Source() != src {
		t.Error("Source lost")
	}
}

// Property: instantiation is deterministic and literal-only templates
// reproduce their text for any binding.
func TestLiteralRoundTripProperty(t *testing.T) {
	f := func(raw string) bool {
		lit := strings.ReplaceAll(raw, `\`, ``)
		lit = strings.ReplaceAll(lit, `"`, ``)
		tpl, err := Parse(`"` + lit + `"`)
		if err != nil {
			return lit == "" // empty literal template is allowed; "" parses
		}
		out1, err1 := tpl.Instantiate(MapBinding{})
		out2, err2 := tpl.Instantiate(MapBinding{"X": "unused"})
		return err1 == nil && err2 == nil && out1 == lit && out2 == lit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every bound field value appears verbatim in the output.
func TestFieldValueAppearsProperty(t *testing.T) {
	tpl := MustParse(`"<" + F + ">"`)
	f := func(v string) bool {
		out, err := tpl.Instantiate(MapBinding{"F": v})
		return err == nil && out == "<"+v+">"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkInstantiate(b *testing.B) {
	tpl := MustParse(`DNAME + " was born in " + BLOCATION + " on " + BDATE`)
	bind := MapBinding{
		"DNAME":     "Woody Allen",
		"BLOCATION": "Brooklyn, New York, USA",
		"BDATE":     "December 1, 1935",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := tpl.Instantiate(bind); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNaiveConcat is the ablation baseline for DESIGN.md §5.1: string
// concatenation without a parsed template.
func BenchmarkNaiveConcat(b *testing.B) {
	bind := map[string]string{
		"DNAME":     "Woody Allen",
		"BLOCATION": "Brooklyn, New York, USA",
		"BDATE":     "December 1, 1935",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = bind["DNAME"] + " was born in " + bind["BLOCATION"] + " on " + bind["BDATE"]
	}
}

func BenchmarkListInstantiate(b *testing.B) {
	lt := MustParseList(`[i < arityOf(TITLE)] { TITLE[i] + " (" + YEAR[i] + "), " } [i = arityOf(TITLE)] { "and " + TITLE[i] + " (" + YEAR[i] + ")." }`)
	rows := []Binding{
		MapBinding{"TITLE": "Match Point", "YEAR": "2005"},
		MapBinding{"TITLE": "Melinda and Melinda", "YEAR": "2004"},
		MapBinding{"TITLE": "Anything Else", "YEAR": "2003"},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lt.Instantiate(rows); err != nil {
			b.Fatal(err)
		}
	}
}
