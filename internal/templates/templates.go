// Package templates implements the paper's template-label language (§2.2):
// the phrases attached to schema-graph nodes and edges that are "assigned
// once, e.g., by the designer, at an initial design phase, and are
// instantiated at query time".
//
// A template is a concatenation ('+' in the paper) of quoted literals and
// field references:
//
//	DNAME + " was born" + " in " + BLOCATION
//
// List templates reproduce the paper's MOVIE_LIST construct — a loop bounded
// by the arity of the bound tuples with a different final clause:
//
//	DEFINE MOVIE_LIST AS
//	  [i < arityOf(TITLE)] { TITLE[i] + " (" + YEAR[i] + "), " }
//	  [i = arityOf(TITLE)] { "and " + TITLE[i] + " (" + YEAR[i] + ")." }
//
// Templates are parsed into small ASTs once and instantiated many times;
// instantiation walks the segment list with a single strings.Builder.
package templates

import (
	"fmt"
	"strings"
)

// Binding supplies field values during instantiation. Fields are looked up
// by the exact name used in the template (conventionally ATTR or REL.ATTR).
type Binding interface {
	// Field returns the value of the named field and whether it exists.
	Field(name string) (string, bool)
}

// MapBinding is the common Binding: a map from field name to value. Lookup
// is case-insensitive on a fallback pass so that templates may write DNAME
// while the catalog stores dname.
type MapBinding map[string]string

// Field implements Binding.
func (m MapBinding) Field(name string) (string, bool) {
	if v, ok := m[name]; ok {
		return v, true
	}
	for k, v := range m {
		if strings.EqualFold(k, name) {
			return v, true
		}
	}
	return "", false
}

// segKind discriminates template segments.
type segKind int

const (
	segLiteral segKind = iota
	segField
)

type segment struct {
	kind segKind
	text string // literal text or field name
	// index is true when the field carries the loop index suffix "[i]";
	// such fields resolve per-row inside a ListTemplate.
	index bool
}

// Template is a parsed phrase template.
type Template struct {
	src      string
	segments []segment
}

// Source returns the original template text.
func (t *Template) Source() string { return t.src }

// Fields returns the distinct field names referenced, in first-use order.
func (t *Template) Fields() []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range t.segments {
		if s.kind == segField && !seen[s.text] {
			seen[s.text] = true
			out = append(out, s.text)
		}
	}
	return out
}

// MustParse parses a template and panics on error; for package-level
// annotation tables whose syntax is fixed at compile time.
func MustParse(src string) *Template {
	t, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return t
}

// Parse parses the '+'-concatenation template syntax. Literals are
// double-quoted with \" and \\ escapes; everything else is a field
// reference, optionally suffixed with "[i]".
func Parse(src string) (*Template, error) {
	t := &Template{src: src}
	rest := strings.TrimSpace(src)
	if rest == "" {
		return nil, fmt.Errorf("templates: empty template")
	}
	first := true
	for {
		if !first {
			if rest == "" {
				break
			}
			if !strings.HasPrefix(rest, "+") {
				return nil, fmt.Errorf("templates: expected '+' near %q in %q", rest, src)
			}
			rest = strings.TrimSpace(rest[1:])
			if rest == "" {
				return nil, fmt.Errorf("templates: dangling '+' in %q", src)
			}
		}
		first = false
		var seg segment
		var err error
		seg, rest, err = parseSegment(rest, src)
		if err != nil {
			return nil, err
		}
		t.segments = append(t.segments, seg)
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
	}
	return t, nil
}

func parseSegment(rest, src string) (segment, string, error) {
	if strings.HasPrefix(rest, `"`) {
		var b strings.Builder
		i := 1
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				b.WriteByte(rest[i+1])
				i += 2
				continue
			}
			if c == '"' {
				return segment{kind: segLiteral, text: b.String()}, rest[i+1:], nil
			}
			b.WriteByte(c)
			i++
		}
		return segment{}, "", fmt.Errorf("templates: unterminated literal in %q", src)
	}
	// Field reference: letters, digits, underscore, dot; optional [i].
	i := 0
	for i < len(rest) {
		c := rest[i]
		if c == '_' || c == '.' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9') {
			i++
			continue
		}
		break
	}
	if i == 0 {
		return segment{}, "", fmt.Errorf("templates: unexpected character %q in %q", rest[0], src)
	}
	seg := segment{kind: segField, text: rest[:i]}
	rest = rest[i:]
	if strings.HasPrefix(rest, "[i]") {
		seg.index = true
		rest = rest[3:]
	}
	return seg, rest, nil
}

// Instantiate renders the template against b. A missing field is an error,
// making annotation typos loud.
func (t *Template) Instantiate(b Binding) (string, error) {
	return t.render(b, true)
}

// InstantiateLenient renders the template, replacing missing fields with the
// empty string; used for optional attributes (a director without a recorded
// birth date).
func (t *Template) InstantiateLenient(b Binding) string {
	s, _ := t.render(b, false)
	return s
}

func (t *Template) render(b Binding, strict bool) (string, error) {
	var out strings.Builder
	out.Grow(len(t.src))
	for _, s := range t.segments {
		if s.kind == segLiteral {
			out.WriteString(s.text)
			continue
		}
		v, ok := b.Field(s.text)
		if !ok {
			if strict {
				return "", fmt.Errorf("templates: unbound field %q in %q", s.text, t.src)
			}
			continue
		}
		out.WriteString(v)
	}
	return out.String(), nil
}

// SplitSubject renders the template as a (subject, predicate) pair when the
// template begins with a field reference: the first field's value is the
// subject and the rest of the rendering is the predicate. The data-to-text
// translator feeds these pairs to the clause factoring machinery. ok is
// false when the template does not start with a field or a field is
// unbound.
func (t *Template) SplitSubject(b Binding) (subject, predicate string, ok bool) {
	if len(t.segments) == 0 || t.segments[0].kind != segField {
		return "", "", false
	}
	subj, found := b.Field(t.segments[0].text)
	if !found {
		return "", "", false
	}
	var out strings.Builder
	for _, s := range t.segments[1:] {
		if s.kind == segLiteral {
			out.WriteString(s.text)
			continue
		}
		v, okf := b.Field(s.text)
		if !okf {
			return "", "", false
		}
		out.WriteString(v)
	}
	return subj, strings.TrimSpace(out.String()), true
}

// HasAllFields reports whether every referenced field is bound; the
// data-to-text translator uses it to skip templates over NULL attributes.
func (t *Template) HasAllFields(b Binding) bool {
	for _, s := range t.segments {
		if s.kind == segField {
			if v, ok := b.Field(s.text); !ok || v == "" {
				return false
			}
		}
	}
	return true
}

// ListTemplate is the paper's arity-bounded loop template: Body renders for
// every element but the last; Final renders for the last element. The
// classic instantiation is "A (2005), B (2004), and C (2003).".
type ListTemplate struct {
	Body  *Template
	Final *Template
}

// ParseList parses the DEFINE ... AS loop syntax:
//
//	[i < arityOf(F)] { body } [i = arityOf(F)] { final }
//
// The arityOf field name is validated against the body's fields but the
// bound is implicit (the number of rows passed to Instantiate).
func ParseList(src string) (*ListTemplate, error) {
	lower := src
	b1 := strings.Index(lower, "{")
	if b1 < 0 {
		return nil, fmt.Errorf("templates: list template %q has no body", src)
	}
	head := strings.TrimSpace(lower[:b1])
	if !strings.HasPrefix(head, "[") || !strings.Contains(head, "arityOf(") {
		return nil, fmt.Errorf("templates: list template %q must start with an [i < arityOf(F)] bound", src)
	}
	e1 := matchBrace(lower, b1)
	if e1 < 0 {
		return nil, fmt.Errorf("templates: unbalanced braces in %q", src)
	}
	body, err := Parse(strings.TrimSpace(lower[b1+1 : e1]))
	if err != nil {
		return nil, fmt.Errorf("templates: list body: %v", err)
	}
	rest := strings.TrimSpace(lower[e1+1:])
	if rest == "" {
		return &ListTemplate{Body: body, Final: body}, nil
	}
	b2 := strings.Index(rest, "{")
	if b2 < 0 || !strings.HasPrefix(rest, "[") {
		return nil, fmt.Errorf("templates: malformed final clause in %q", src)
	}
	e2 := matchBrace(rest, b2)
	if e2 < 0 {
		return nil, fmt.Errorf("templates: unbalanced braces in final clause of %q", src)
	}
	final, err := Parse(strings.TrimSpace(rest[b2+1 : e2]))
	if err != nil {
		return nil, fmt.Errorf("templates: list final: %v", err)
	}
	if extra := strings.TrimSpace(rest[e2+1:]); extra != "" {
		return nil, fmt.Errorf("templates: trailing content %q in %q", extra, src)
	}
	return &ListTemplate{Body: body, Final: final}, nil
}

// MustParseList is ParseList panicking on error.
func MustParseList(src string) *ListTemplate {
	lt, err := ParseList(src)
	if err != nil {
		panic(err)
	}
	return lt
}

func matchBrace(s string, open int) int {
	depth := 0
	inStr := false
	for i := open; i < len(s); i++ {
		c := s[i]
		if inStr {
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
			continue
		}
		switch c {
		case '"':
			inStr = true
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// Instantiate renders the list over rows. Rows before the last use Body;
// the last row uses Final. With a single row only Final renders.
func (lt *ListTemplate) Instantiate(rows []Binding) (string, error) {
	var out strings.Builder
	for i, row := range rows {
		tpl := lt.Body
		if i == len(rows)-1 {
			tpl = lt.Final
		}
		s, err := tpl.Instantiate(row)
		if err != nil {
			return "", fmt.Errorf("templates: list row %d: %v", i, err)
		}
		out.WriteString(s)
	}
	return out.String(), nil
}
