package rewrite

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/querygraph"
	"repro/internal/sqlparser"
)

func parse(t *testing.T, src string) *sqlparser.SelectStmt {
	t.Helper()
	sel, err := sqlparser.ParseSelect(src)
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

// TestUnnestQ5ProducesQ1Shape reproduces the paper's claim that Q5 "has a
// flat equivalent described in query Q1".
func TestUnnestQ5ProducesQ1Shape(t *testing.T) {
	sel := parse(t, sqlparser.PaperQueries["Q5"])
	res := UnnestIn(sel)
	if res.Unnested != 2 {
		t.Fatalf("unnested = %d", res.Unnested)
	}
	flat := res.Stmt
	if len(flat.From) != 3 {
		t.Fatalf("flat FROM = %d: %s", len(flat.From), flat.SQL())
	}
	conj := sqlparser.Conjuncts(flat.Where)
	if len(conj) != 3 {
		t.Fatalf("flat conjuncts = %d: %s", len(conj), flat.SQL())
	}
	// No IN remains.
	if strings.Contains(flat.SQL(), " IN ") {
		t.Errorf("IN survives: %s", flat.SQL())
	}
	// The flat query must classify as a path on the movie schema.
	g, err := querygraph.Build(flat, dataset.MovieSchema())
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsPath() || !g.AllJoinsFK() {
		t.Errorf("flat Q5 is not an FK path:\n%s", g.ASCII())
	}
}

// TestUnnestPreservesAnswers checks semantic equivalence on the curated
// database: Q5 flat and nested return identical rows.
func TestUnnestPreservesAnswers(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	ex := engine.New(db)
	orig := parse(t, sqlparser.PaperQueries["Q5"])
	flat := UnnestIn(orig).Stmt
	r1, err := ex.Select(orig)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ex.Select(flat)
	if err != nil {
		t.Fatal(err)
	}
	key := func(res *engine.Result) []string {
		out := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			out[i] = r[0].String()
		}
		sort.Strings(out)
		return out
	}
	k1, k2 := key(r1), key(r2)
	if len(k1) != len(k2) {
		t.Fatalf("row counts differ: %v vs %v", k1, k2)
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("answers differ: %v vs %v", k1, k2)
		}
	}
}

func TestUnnestAliasCollision(t *testing.T) {
	sel := parse(t, `select m.title from MOVIES m
		where m.id in (select c.mid from CAST c where c.aid in
			(select c.aid from CAST c where c.role = 'Neo'))`)
	res := UnnestIn(sel)
	if res.Unnested != 2 {
		t.Fatalf("unnested = %d: %s", res.Unnested, res.Stmt.SQL())
	}
	// Two CAST instances must have distinct aliases.
	names := map[string]bool{}
	for _, f := range res.Stmt.From {
		if names[strings.ToLower(f.Name())] {
			t.Fatalf("alias collision in %s", res.Stmt.SQL())
		}
		names[strings.ToLower(f.Name())] = true
	}
	if len(res.Renamed) == 0 {
		t.Error("no rename recorded")
	}
}

func TestUnnestLeavesNegatedAndAggregated(t *testing.T) {
	cases := []string{
		"select m.title from MOVIES m where m.id not in (select g.mid from GENRE g)",
		"select m.title from MOVIES m where m.year in (select max(m2.year) from MOVIES m2)",
		"select m.title from MOVIES m where m.id in (select distinct g.mid from GENRE g)",
		"select m.title from MOVIES m where m.id in (select g.mid from GENRE g group by g.mid)",
		"select m.title from MOVIES m where m.id in (select g.mid from GENRE g where not exists (select * from CAST c))",
	}
	for _, src := range cases {
		res := UnnestIn(parse(t, src))
		if res.Unnested != 0 {
			t.Errorf("unnested blocked case: %s", src)
		}
	}
}

func TestUnnestDoesNotMutateInput(t *testing.T) {
	sel := parse(t, sqlparser.PaperQueries["Q5"])
	before := sel.SQL()
	_ = UnnestIn(sel)
	if sel.SQL() != before {
		t.Error("UnnestIn mutated its input")
	}
}

// TestDetectDivisionQ6 recognizes the paper's division query.
func TestDetectDivisionQ6(t *testing.T) {
	sel := parse(t, sqlparser.PaperQueries["Q6"])
	d, ok := DetectDivision(sel)
	if !ok {
		t.Fatal("Q6 division not detected")
	}
	if d.OuterRelation != "MOVIES" || d.DivisorRelation != "GENRE" {
		t.Errorf("division = %+v", d)
	}
	if !strings.EqualFold(d.SharedAttr, "genre") {
		t.Errorf("shared attr = %q", d.SharedAttr)
	}
	if !strings.Contains(d.LinkCond, "m.id") {
		t.Errorf("link = %q", d.LinkCond)
	}
}

func TestDetectDivisionNegatives(t *testing.T) {
	cases := []string{
		sqlparser.PaperQueries["Q1"],
		// Single NOT EXISTS is not division.
		"select m.title from MOVIES m where not exists (select * from GENRE g where g.mid = m.id)",
		// Inner EXISTS not negated.
		`select m.title from MOVIES m where not exists (
			select * from GENRE g1 where exists (
				select * from GENRE g2 where g2.mid = m.id and g2.genre = g1.genre))`,
		// Witness relation differs from divisor.
		`select m.title from MOVIES m where not exists (
			select * from GENRE g1 where not exists (
				select * from CAST c where c.mid = m.id))`,
	}
	for _, src := range cases {
		if _, ok := DetectDivision(parse(t, src)); ok {
			t.Errorf("false division: %s", src)
		}
	}
}

// TestDetectSameValueQ8 recognizes count(distinct year) = 1.
func TestDetectSameValueQ8(t *testing.T) {
	sv, ok := DetectSameValue(parse(t, sqlparser.PaperQueries["Q8"]))
	if !ok {
		t.Fatal("Q8 idiom not detected")
	}
	if sv.Attr.Column != "year" || sv.Attr.Table != "m" {
		t.Errorf("attr = %+v", sv.Attr)
	}
	if len(sv.GroupBy) != 2 {
		t.Errorf("group by = %v", sv.GroupBy)
	}
	// Reversed literal side.
	sv2, ok := DetectSameValue(parse(t, `select a.id from CAST c, ACTOR a
		where c.aid = a.id group by a.id having 1 = count(distinct c.mid)`))
	if !ok || sv2.Attr.Column != "mid" {
		t.Errorf("reversed form: %v %v", sv2, ok)
	}
	// Negative: = 2, or non-distinct.
	if _, ok := DetectSameValue(parse(t, `select a.id from CAST c group by a.id having count(distinct c.mid) = 2`)); ok {
		t.Error("count=2 detected")
	}
	if _, ok := DetectSameValue(parse(t, `select a.id from CAST c group by a.id having count(c.mid) = 1`)); ok {
		t.Error("non-distinct detected")
	}
}

// TestDetectExtremeQ9 recognizes <= ALL with the repeated-entity subquery.
func TestDetectExtremeQ9(t *testing.T) {
	e, ok := DetectExtreme(parse(t, sqlparser.PaperQueries["Q9"]))
	if !ok {
		t.Fatal("Q9 idiom not detected")
	}
	if !e.Min || e.Attr.Column != "year" {
		t.Errorf("extreme = %+v", e)
	}
	if !strings.EqualFold(e.RepeatedOn, "title") {
		t.Errorf("repeatedOn = %q", e.RepeatedOn)
	}
}

func TestDetectExtremeLatest(t *testing.T) {
	e, ok := DetectExtreme(parse(t, `select m.title from MOVIES m
		where m.year >= all (select m2.year from MOVIES m2)`))
	if !ok || e.Min {
		t.Errorf("latest: %+v %v", e, ok)
	}
	if e.RepeatedOn != "" {
		t.Errorf("spurious repeatedOn: %q", e.RepeatedOn)
	}
	if _, ok := DetectExtreme(parse(t, `select m.title from MOVIES m
		where m.year = all (select m2.year from MOVIES m2)`)); ok {
		t.Error("= ALL detected as extreme")
	}
}

// TestDetectPairsQ3 recognizes the pairing idiom.
func TestDetectPairsQ3(t *testing.T) {
	sel := parse(t, sqlparser.PaperQueries["Q3"])
	g, err := querygraph.Build(sel, dataset.MovieSchema())
	if err != nil {
		t.Fatal(err)
	}
	p, ok := DetectPairs(g, dataset.MovieSchema())
	if !ok {
		t.Fatal("Q3 pairs not detected")
	}
	if p.Relation != "ACTOR" || p.Shared != "MOVIES" {
		t.Errorf("pairs = %+v", p)
	}
}

func TestDetectPairsNegative(t *testing.T) {
	// Q0 compares a non-key attribute; not the pairs idiom.
	sel := parse(t, sqlparser.PaperQueries["Q0"])
	g, err := querygraph.Build(sel, dataset.EmpDeptSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := DetectPairs(g, dataset.EmpDeptSchema()); ok {
		t.Error("Q0 detected as pairs")
	}
}

// TestDetectComparativeQ0 recognizes "employees who make more than their
// managers".
func TestDetectComparativeQ0(t *testing.T) {
	sel := parse(t, sqlparser.PaperQueries["Q0"])
	g, err := querygraph.Build(sel, dataset.EmpDeptSchema())
	if err != nil {
		t.Fatal(err)
	}
	c, ok := DetectComparative(g, dataset.EmpDeptSchema())
	if !ok {
		t.Fatal("Q0 comparative not detected")
	}
	if c.Relation != "EMP" || !strings.EqualFold(c.Attr, "sal") || !c.Greater {
		t.Errorf("comparative = %+v", c)
	}
	if c.Aliases[0] != "e1" || c.Aliases[1] != "e2" {
		t.Errorf("aliases = %v", c.Aliases)
	}
	if !strings.EqualFold(c.RoleAttr, "mgr") || c.RoleRelation != "DEPT" {
		t.Errorf("role = %q.%q", c.RoleRelation, c.RoleAttr)
	}
}

func TestDetectComparativeNegative(t *testing.T) {
	// Q3's inequality is on the primary key; not comparative.
	sel := parse(t, sqlparser.PaperQueries["Q3"])
	g, err := querygraph.Build(sel, dataset.MovieSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := DetectComparative(g, dataset.MovieSchema()); ok {
		t.Error("Q3 detected as comparative")
	}
}

func BenchmarkUnnestQ5(b *testing.B) {
	sel, err := sqlparser.ParseSelect(sqlparser.PaperQueries["Q5"])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := UnnestIn(sel)
		if res.Unnested != 2 {
			b.Fatal("unexpected unnest count")
		}
	}
}

func BenchmarkDetectDivision(b *testing.B) {
	sel, err := sqlparser.ParseSelect(sqlparser.PaperQueries["Q6"])
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := DetectDivision(sel); !ok {
			b.Fatal("not detected")
		}
	}
}
