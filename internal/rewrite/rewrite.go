// Package rewrite implements the query-equivalence transformations and
// higher-order idiom detectors that the paper motivates "by translatability
// principles" (§3.3.4–3.3.5):
//
//   - IN-subquery unnesting turns Q5 into its flat equivalent Q1, after
//     which the ordinary graph translation applies ("it is straightforward
//     to obtain from the flat form of the query").
//   - Double-NOT-EXISTS detection recognizes relational division (Q6,
//     "movies that have ALL genres").
//   - count(distinct X) = 1 recognizes the same-value idiom (Q8, "all in
//     the same year").
//   - <= ALL / >= ALL recognize the extreme idiom (Q9, "earliest" /
//     "latest"), including the repeated-entity refinement of Q9's
//     self-join subquery.
//   - Self-join idioms over the query graph: key-inequality pairing (Q3,
//     "pairs of actors in the same movie") and non-key comparison through a
//     role path (the intro's "employees who make more than their
//     managers").
package rewrite

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/querygraph"
	"repro/internal/sqlparser"
)

// ---------------------------------------------------------------------------
// IN-subquery unnesting (Q5 → Q1)
// ---------------------------------------------------------------------------

// UnnestResult reports an unnesting outcome.
type UnnestResult struct {
	// Stmt is the rewritten statement (a deep copy; the input is not
	// modified).
	Stmt *sqlparser.SelectStmt
	// Unnested counts how many IN-subqueries were flattened.
	Unnested int
	// Renamed maps original inner aliases to their collision-free names.
	Renamed map[string]string
}

// UnnestIn flattens non-negated, non-aggregating IN-subqueries into joins,
// recursively, and returns the flat statement. Subqueries with grouping,
// DISTINCT, HAVING, multiple output columns, or set-modifying semantics are
// left in place.
func UnnestIn(sel *sqlparser.SelectStmt) UnnestResult {
	out := UnnestResult{Stmt: sqlparser.CloneSelect(sel), Renamed: map[string]string{}}
	for {
		if !unnestOnce(&out) {
			return out
		}
	}
}

func unnestOnce(res *UnnestResult) bool {
	sel := res.Stmt
	conjuncts := sqlparser.Conjuncts(sel.Where)
	for i, c := range conjuncts {
		in, ok := c.(*sqlparser.InExpr)
		if !ok || in.Subquery == nil || in.Negate {
			continue
		}
		sub := in.Subquery
		if !flattenable(sub) {
			continue
		}
		// Rename inner aliases that collide with outer ones.
		taken := map[string]bool{}
		for _, t := range sel.From {
			taken[strings.ToLower(t.Name())] = true
		}
		renames := map[string]string{}
		for _, t := range sub.From {
			name := t.Name()
			if taken[strings.ToLower(name)] {
				fresh := freshAlias(name, taken)
				renames[strings.ToLower(name)] = fresh
				if t.Alias != "" {
					t.Alias = fresh
				} else {
					t.Alias = fresh
				}
				res.Renamed[name] = fresh
				taken[strings.ToLower(fresh)] = true
			} else {
				taken[strings.ToLower(name)] = true
			}
		}
		if len(renames) > 0 {
			renameRefs(sub.Where, renames)
			for j := range sub.Items {
				renameRefs(sub.Items[j].Expr, renames)
			}
		}
		// Build the join predicate: subject = subquery output.
		outCol := sub.Items[0].Expr
		join := &sqlparser.BinaryExpr{Op: sqlparser.OpEq, Left: in.Subject, Right: outCol}
		// Splice: replace conjunct i with join + sub.Where.
		newConj := append([]sqlparser.Expr{}, conjuncts[:i]...)
		newConj = append(newConj, join)
		if sub.Where != nil {
			newConj = append(newConj, sqlparser.Conjuncts(sub.Where)...)
		}
		newConj = append(newConj, conjuncts[i+1:]...)
		sel.Where = sqlparser.AndAll(newConj)
		sel.From = append(sel.From, sub.From...)
		res.Unnested++
		return true
	}
	return false
}

// flattenable reports whether an IN-subquery can merge into its parent.
func flattenable(sub *sqlparser.SelectStmt) bool {
	if len(sub.Items) != 1 || sub.Distinct || len(sub.GroupBy) > 0 ||
		sub.Having != nil || len(sub.OrderBy) > 0 || sub.Limit >= 0 {
		return false
	}
	if _, ok := sub.Items[0].Expr.(*sqlparser.ColumnRef); !ok {
		return false
	}
	if sqlparser.HasAggregate(sub.Items[0].Expr) {
		return false
	}
	// Nested EXISTS/quantified inside the subquery's WHERE stay put; IN is
	// fine (it unnests on a later pass).
	blocked := false
	sqlparser.WalkExpr(sub.Where, func(x sqlparser.Expr) bool {
		switch x.(type) {
		case *sqlparser.ExistsExpr, *sqlparser.QuantifiedExpr, *sqlparser.SubqueryExpr:
			blocked = true
			return false
		case *sqlparser.NotExpr:
			blocked = true
			return false
		}
		return true
	})
	return !blocked
}

func freshAlias(base string, taken map[string]bool) string {
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s%d", base, i)
		if !taken[strings.ToLower(cand)] {
			return cand
		}
	}
}

func renameRefs(e sqlparser.Expr, renames map[string]string) {
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if c, ok := x.(*sqlparser.ColumnRef); ok {
			if to, ok := renames[strings.ToLower(c.Table)]; ok {
				c.Table = to
			}
		}
		// Also descend into IN-subqueries, which WalkExpr skips.
		if in, ok := x.(*sqlparser.InExpr); ok && in.Subquery != nil {
			renameRefs(in.Subquery.Where, renames)
			for i := range in.Subquery.Items {
				renameRefs(in.Subquery.Items[i].Expr, renames)
			}
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// Relational division (Q6)
// ---------------------------------------------------------------------------

// Division describes a detected double-NOT-EXISTS division.
type Division struct {
	// OuterAlias / OuterRelation anchor the result ("movies ...").
	OuterAlias, OuterRelation string
	// DivisorAlias / DivisorRelation is the universally quantified set
	// ("... ALL genres").
	DivisorAlias, DivisorRelation string
	// SharedAttr is the attribute equated between divisor and witness
	// ("genre").
	SharedAttr string
	// LinkCond is the witness's correlation to the outer tuple
	// ("g2.mid = m.id").
	LinkCond string
}

// DetectDivision recognizes the pattern
//
//	NOT EXISTS (SELECT * FROM D d1 WHERE NOT EXISTS (
//	    SELECT * FROM D d2 WHERE d2.link = outer.key AND d2.a = d1.a))
//
// and returns its description.
func DetectDivision(sel *sqlparser.SelectStmt) (*Division, bool) {
	if len(sel.From) == 0 {
		return nil, false
	}
	outerRef := sel.From[0]
	for _, c := range sqlparser.Conjuncts(sel.Where) {
		ex1, ok := c.(*sqlparser.ExistsExpr)
		if !ok || !ex1.Negate {
			continue
		}
		mid := ex1.Subquery
		if len(mid.From) != 1 {
			continue
		}
		divisor := mid.From[0]
		for _, c2 := range sqlparser.Conjuncts(mid.Where) {
			ex2, ok := c2.(*sqlparser.ExistsExpr)
			if !ok || !ex2.Negate {
				continue
			}
			inner := ex2.Subquery
			if len(inner.From) != 1 {
				continue
			}
			witness := inner.From[0]
			if !strings.EqualFold(witness.Relation, divisor.Relation) {
				continue
			}
			var linkCond, sharedAttr string
			for _, c3 := range sqlparser.Conjuncts(inner.Where) {
				b, ok := c3.(*sqlparser.BinaryExpr)
				if !ok || b.Op != sqlparser.OpEq {
					continue
				}
				l, lok := b.Left.(*sqlparser.ColumnRef)
				r, rok := b.Right.(*sqlparser.ColumnRef)
				if !lok || !rok {
					continue
				}
				sides := map[string]*sqlparser.ColumnRef{
					strings.ToLower(l.Table): l,
					strings.ToLower(r.Table): r,
				}
				w := strings.ToLower(witness.Name())
				o := strings.ToLower(outerRef.Name())
				d := strings.ToLower(divisor.Name())
				if sides[w] != nil && sides[o] != nil {
					linkCond = c3.SQL()
				}
				if sides[w] != nil && sides[d] != nil {
					sharedAttr = sides[d].Column
				}
			}
			if linkCond != "" && sharedAttr != "" {
				return &Division{
					OuterAlias:      outerRef.Name(),
					OuterRelation:   outerRef.Relation,
					DivisorAlias:    divisor.Name(),
					DivisorRelation: divisor.Relation,
					SharedAttr:      sharedAttr,
					LinkCond:        linkCond,
				}, true
			}
		}
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Same-value idiom (Q8)
// ---------------------------------------------------------------------------

// SameValue describes HAVING COUNT(DISTINCT x) = 1.
type SameValue struct {
	// Attr is the attribute all rows of a group share ("m.year").
	Attr *sqlparser.ColumnRef
	// GroupBy lists the grouping expressions (SQL text).
	GroupBy []string
}

// DetectSameValue recognizes the Q8 idiom.
func DetectSameValue(sel *sqlparser.SelectStmt) (*SameValue, bool) {
	for _, c := range sqlparser.Conjuncts(sel.Having) {
		b, ok := c.(*sqlparser.BinaryExpr)
		if !ok || b.Op != sqlparser.OpEq {
			continue
		}
		var agg *sqlparser.AggregateExpr
		var lit *sqlparser.Literal
		if a, ok := b.Left.(*sqlparser.AggregateExpr); ok {
			agg = a
			lit, _ = b.Right.(*sqlparser.Literal)
		} else if a, ok := b.Right.(*sqlparser.AggregateExpr); ok {
			agg = a
			lit, _ = b.Left.(*sqlparser.Literal)
		}
		if agg == nil || lit == nil || agg.Func != sqlparser.AggCount || !agg.Distinct {
			continue
		}
		if lit.Value.String() != "1" {
			continue
		}
		col, ok := agg.Arg.(*sqlparser.ColumnRef)
		if !ok {
			continue
		}
		var gb []string
		for _, g := range sel.GroupBy {
			gb = append(gb, g.SQL())
		}
		return &SameValue{Attr: col, GroupBy: gb}, true
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Extreme idiom (Q9)
// ---------------------------------------------------------------------------

// Extreme describes subject <op> ALL (subquery).
type Extreme struct {
	// Attr is the compared attribute ("m.year").
	Attr *sqlparser.ColumnRef
	// Min is true for <= / < ALL ("earliest"); false for >= / > ("latest").
	Min bool
	// RepeatedOn is non-empty when the subquery restricts to entities that
	// appear more than once, equated on this attribute (Q9's m1.title =
	// m.title, m2.title = m.title, m1.id != m2.id self-join): the paper's
	// "versions of movies that have been repeated".
	RepeatedOn string
}

// DetectExtreme recognizes the Q9 idiom anywhere in WHERE.
func DetectExtreme(sel *sqlparser.SelectStmt) (*Extreme, bool) {
	var found *Extreme
	sqlparser.WalkExpr(sel.Where, func(x sqlparser.Expr) bool {
		q, ok := x.(*sqlparser.QuantifiedExpr)
		if !ok || !q.All {
			return true
		}
		col, ok := q.Subject.(*sqlparser.ColumnRef)
		if !ok {
			return true
		}
		e := &Extreme{Attr: col}
		switch q.Op {
		case sqlparser.OpLe, sqlparser.OpLt:
			e.Min = true
		case sqlparser.OpGe, sqlparser.OpGt:
			e.Min = false
		default:
			return true
		}
		e.RepeatedOn = repeatedOnAttr(q.Subquery)
		found = e
		return false
	})
	return found, found != nil
}

// repeatedOnAttr inspects a subquery for the two-instance "repeated entity"
// self-join: two tuple variables of one relation, each equated to the outer
// query on attribute A, with an inequality on another attribute.
func repeatedOnAttr(sub *sqlparser.SelectStmt) string {
	if len(sub.From) != 2 || !strings.EqualFold(sub.From[0].Relation, sub.From[1].Relation) {
		return ""
	}
	a1 := strings.ToLower(sub.From[0].Name())
	a2 := strings.ToLower(sub.From[1].Name())
	equalsOuter := map[string]string{} // alias -> attr equated to an outer ref
	inequality := false
	for _, c := range sqlparser.Conjuncts(sub.Where) {
		b, ok := c.(*sqlparser.BinaryExpr)
		if !ok {
			continue
		}
		l, lok := b.Left.(*sqlparser.ColumnRef)
		r, rok := b.Right.(*sqlparser.ColumnRef)
		if !lok || !rok {
			continue
		}
		lt, rt := strings.ToLower(l.Table), strings.ToLower(r.Table)
		switch b.Op {
		case sqlparser.OpEq:
			// inner = outer (outer table is neither a1 nor a2)
			if (lt == a1 || lt == a2) && rt != a1 && rt != a2 {
				equalsOuter[lt] = l.Column
			}
			if (rt == a1 || rt == a2) && lt != a1 && lt != a2 {
				equalsOuter[rt] = r.Column
			}
		case sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpGt:
			if (lt == a1 && rt == a2) || (lt == a2 && rt == a1) {
				inequality = true
			}
		}
	}
	if inequality && equalsOuter[a1] != "" && strings.EqualFold(equalsOuter[a1], equalsOuter[a2]) {
		return equalsOuter[a1]
	}
	return ""
}

// ---------------------------------------------------------------------------
// Self-join idioms over the query graph (Q3, Q0)
// ---------------------------------------------------------------------------

// Pairs describes the key-inequality pairing idiom: two instances of one
// relation, connected to a shared relation, with an inequality on the
// relation's key used purely to enumerate unordered pairs (Q3).
type Pairs struct {
	// Relation is the paired relation ("ACTOR").
	Relation string
	// Aliases are the two tuple variables ("a1", "a2").
	Aliases [2]string
	// Shared is the relation both instances connect to ("MOVIES").
	Shared string
}

// DetectPairs recognizes the Q3 idiom on a query graph.
func DetectPairs(g *querygraph.Graph, schema *catalog.Schema) (*Pairs, bool) {
	inst := instancesByRelation(g)
	for relName, aliases := range inst {
		if len(aliases) != 2 {
			continue
		}
		rel := schema.Relation(relName)
		if rel == nil {
			continue
		}
		// An inequality edge between the two aliases on a key attribute.
		keyIneq := false
		for _, j := range g.Joins {
			if !sameAliasPair(j, aliases[0], aliases[1]) || j.FK || j.Equi {
				continue
			}
			if condOnKey(j.Cond, rel) {
				keyIneq = true
			}
		}
		if !keyIneq {
			continue
		}
		// Both aliases reach a common relation through FK edges.
		shared := commonNeighbor(g, aliases[0], aliases[1])
		if shared == "" {
			continue
		}
		return &Pairs{Relation: rel.Name, Aliases: [2]string{aliases[0], aliases[1]}, Shared: shared}, true
	}
	return nil, false
}

// Comparative describes the non-key self-join comparison idiom: "employees
// who make more than their managers".
type Comparative struct {
	// Relation is the compared relation ("EMP").
	Relation string
	// Aliases are (subject, object): subject's Attr exceeds object's.
	Aliases [2]string
	// Attr is the compared attribute ("sal").
	Attr string
	// Greater is true for > / >=.
	Greater bool
	// RoleAttr is the attribute linking the object instance into the path
	// ("mgr"), whose gloss names the role ("manager"). Empty when the link
	// is not attribute-named.
	RoleAttr string
	// RoleRelation is the relation declaring RoleAttr ("DEPT").
	RoleRelation string
}

// DetectComparative recognizes the Q0 idiom on a query graph.
func DetectComparative(g *querygraph.Graph, schema *catalog.Schema) (*Comparative, bool) {
	inst := instancesByRelation(g)
	for relName, aliases := range inst {
		if len(aliases) != 2 {
			continue
		}
		rel := schema.Relation(relName)
		if rel == nil {
			continue
		}
		for _, j := range g.Joins {
			if !sameAliasPair(j, aliases[0], aliases[1]) || j.Equi || j.FK {
				continue
			}
			attr, op, subject := parseComparison(j, rel)
			if attr == "" || rel.IsPrimaryKey([]string{attr}) {
				continue
			}
			object := aliases[0]
			if strings.EqualFold(subject, aliases[0]) {
				object = aliases[1]
			}
			roleAttr, roleRel := findRoleAttr(g, schema, object)
			return &Comparative{
				Relation: rel.Name,
				Aliases:  [2]string{subject, object},
				Attr:     attr,
				Greater:  op == ">" || op == ">=",
				RoleAttr: roleAttr, RoleRelation: roleRel,
			}, true
		}
	}
	return nil, false
}

func instancesByRelation(g *querygraph.Graph) map[string][]string {
	out := map[string][]string{}
	for _, b := range g.Boxes {
		key := strings.ToUpper(b.Relation)
		out[key] = append(out[key], b.Alias)
	}
	return out
}

func sameAliasPair(j querygraph.JoinEdge, a, b string) bool {
	return (strings.EqualFold(j.From, a) && strings.EqualFold(j.To, b)) ||
		(strings.EqualFold(j.From, b) && strings.EqualFold(j.To, a))
}

// condOnKey reports whether a condition like "a1.id > a2.id" compares the
// relation's single-attribute primary key with itself.
func condOnKey(cond string, rel *catalog.Relation) bool {
	if len(rel.PrimaryKey) != 1 {
		return false
	}
	key := strings.ToLower(rel.PrimaryKey[0])
	lower := strings.ToLower(cond)
	return strings.Count(lower, "."+key) >= 2
}

// parseComparison extracts (attr, op, subjectAlias) from a comparison edge
// like "e1.sal > e2.sal"; subject is the side that is greater for > ops.
func parseComparison(j querygraph.JoinEdge, rel *catalog.Relation) (attr, op, subject string) {
	cond := j.Cond
	for _, cand := range []string{">=", "<=", ">", "<", "!="} {
		if i := strings.Index(cond, cand); i >= 0 {
			left := strings.TrimSpace(cond[:i])
			right := strings.TrimSpace(cond[i+len(cand):])
			la, lattr, lok := splitQualified(left)
			ra, rattr, rok := splitQualified(right)
			if !lok || !rok || !strings.EqualFold(lattr, rattr) {
				return "", "", ""
			}
			if rel.AttrIndex(lattr) < 0 {
				return "", "", ""
			}
			switch cand {
			case ">", ">=":
				return lattr, cand, la
			case "<", "<=":
				return lattr, revOp(cand), ra
			default:
				return lattr, cand, la
			}
		}
	}
	return "", "", ""
}

func revOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	}
	return op
}

func splitQualified(s string) (alias, attr string, ok bool) {
	parts := strings.Split(s, ".")
	if len(parts) != 2 {
		return "", "", false
	}
	return parts[0], parts[1], true
}

// commonNeighbor finds a relation reachable from both aliases via FK equi
// edges (directly or through a bridge of degree 2, like CAST).
func commonNeighbor(g *querygraph.Graph, a, b string) string {
	reach := func(start string) map[string]bool {
		out := map[string]bool{}
		// One or two FK hops.
		for _, j1 := range g.Joins {
			if !j1.FK {
				continue
			}
			var next string
			switch {
			case strings.EqualFold(j1.From, start):
				next = j1.To
			case strings.EqualFold(j1.To, start):
				next = j1.From
			default:
				continue
			}
			out[strings.ToLower(next)] = true
			for _, j2 := range g.Joins {
				if !j2.FK {
					continue
				}
				switch {
				case strings.EqualFold(j2.From, next) && !strings.EqualFold(j2.To, start):
					out[strings.ToLower(j2.To)] = true
				case strings.EqualFold(j2.To, next) && !strings.EqualFold(j2.From, start):
					out[strings.ToLower(j2.From)] = true
				}
			}
		}
		return out
	}
	ra, rb := reach(a), reach(b)
	for alias := range ra {
		if rb[alias] && !strings.EqualFold(alias, a) && !strings.EqualFold(alias, b) {
			for _, box := range g.Boxes {
				if strings.EqualFold(box.Alias, alias) {
					return box.Relation
				}
			}
		}
	}
	return ""
}

// findRoleAttr locates the attribute through which the object alias is
// referenced: an FK equi-edge "x.role = object.key" names the role ("d.mgr
// = e2.eid" names "mgr" declared by DEPT).
func findRoleAttr(g *querygraph.Graph, schema *catalog.Schema, object string) (attr, rel string) {
	for _, j := range g.Joins {
		if !j.Equi {
			continue
		}
		var otherAlias, otherSide, objSide string
		switch {
		case strings.EqualFold(j.From, object):
			otherAlias = j.To
		case strings.EqualFold(j.To, object):
			otherAlias = j.From
		default:
			continue
		}
		// Parse "x.a = y.b"; pick the side not belonging to object.
		parts := strings.SplitN(j.Cond, "=", 2)
		if len(parts) != 2 {
			continue
		}
		l := strings.TrimSpace(parts[0])
		r := strings.TrimSpace(parts[1])
		la, lattr, lok := splitQualified(l)
		ra, rattr, rok := splitQualified(r)
		if !lok || !rok {
			continue
		}
		if strings.EqualFold(la, object) {
			objSide, otherSide = lattr, rattr
		} else if strings.EqualFold(ra, object) {
			objSide, otherSide = rattr, lattr
		} else {
			continue
		}
		_ = objSide
		// The role attribute lives on the other relation.
		for _, box := range g.Boxes {
			if strings.EqualFold(box.Alias, otherAlias) {
				other := schema.Relation(box.Relation)
				if other != nil && other.AttrIndex(otherSide) >= 0 && !other.IsPrimaryKey([]string{otherSide}) {
					return otherSide, other.Name
				}
			}
		}
	}
	return "", ""
}
