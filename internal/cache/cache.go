// Package cache provides the sharded LRU caches behind the concurrent
// serving layer: parsed ASTs, query graphs, and translations are all keyed
// on normalized SQL so that repeated Ask/DescribeQuery calls skip the parse
// and translation pipeline entirely.
//
// The cache is safe for concurrent use. Keys are hashed onto a fixed set of
// shards, each with its own mutex and LRU list, so concurrent sessions
// contend only when they hash to the same shard.
package cache

import (
	"container/list"
	"hash/maphash"
	"strings"
	"sync"
	"unicode"
)

// shardCount is the number of independent lock domains. Must be a power of
// two so the hash can be masked instead of divided.
const shardCount = 16

// Stats reports cumulative cache effectiveness counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
}

// Cache is a sharded LRU map from string keys to values of type V.
type Cache[V any] struct {
	shards [shardCount]shard[V]
	seed   maphash.Seed
	// capPerShard bounds each shard; total capacity is capPerShard*shardCount.
	capPerShard int
}

type shard[V any] struct {
	mu        sync.Mutex
	entries   map[string]*list.Element
	lru       *list.List // front = most recently used
	hits      int64
	misses    int64
	evictions int64
}

type entry[V any] struct {
	key string
	val V
}

// New creates a cache holding up to capacity entries (rounded up to a
// multiple of the shard count; capacity <= 0 defaults to 512).
func New[V any](capacity int) *Cache[V] {
	if capacity <= 0 {
		capacity = 512
	}
	per := (capacity + shardCount - 1) / shardCount
	c := &Cache[V]{seed: maphash.MakeSeed(), capPerShard: per}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*list.Element)
		c.shards[i].lru = list.New()
	}
	return c
}

func (c *Cache[V]) shardFor(key string) *shard[V] {
	h := maphash.String(c.seed, key)
	return &c.shards[h&(shardCount-1)]
}

// Get returns the cached value for key and marks it recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		s.hits++
		return el.Value.(*entry[V]).val, true
	}
	s.misses++
	var zero V
	return zero, false
}

// Put inserts or refreshes key, evicting the least recently used entry of
// the shard when it is full.
func (c *Cache[V]) Put(key string, val V) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*entry[V]).val = val
		s.lru.MoveToFront(el)
		return
	}
	if s.lru.Len() >= c.capPerShard {
		oldest := s.lru.Back()
		if oldest != nil {
			s.lru.Remove(oldest)
			delete(s.entries, oldest.Value.(*entry[V]).key)
			s.evictions++
		}
	}
	s.entries[key] = s.lru.PushFront(&entry[V]{key: key, val: val})
}

// Clear discards every entry (hit/miss/eviction counters are kept). Used
// when the cached values are known to be stale wholesale, e.g. result
// caches after data changes.
func (c *Cache[V]) Clear() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[string]*list.Element)
		s.lru = list.New()
		s.mu.Unlock()
	}
}

// Len returns the current number of cached entries.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.lru.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats aggregates counters across all shards.
func (c *Cache[V]) Stats() Stats {
	var out Stats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out.Hits += s.hits
		out.Misses += s.misses
		out.Evictions += s.evictions
		out.Entries += s.lru.Len()
		s.mu.Unlock()
	}
	return out
}

// NormalizeSQL canonicalizes a SQL string for use as a cache key, mirroring
// the lexer's token-level insensitivities: "--" line comments and "/* */"
// block comments are stripped (exactly as sqlparser's skipSpaceAndComments
// does), whitespace runs collapse to one space, text outside quotes is
// lowercased, and trailing semicolons/space are trimmed. Two statements
// that differ only in layout, comments, keyword case, or identifier case
// therefore share a cache entry; single-quoted literals and double-quoted
// identifiers keep their exact bytes, so statements differing inside
// quotes never collide.
func NormalizeSQL(sql string) string {
	var b strings.Builder
	b.Grow(len(sql))
	const (
		code = iota
		inString
		inIdent
	)
	state := code
	pendingSpace := false
	runes := []rune(sql)
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		switch state {
		case inString:
			b.WriteRune(r)
			if r == '\'' {
				state = code
			}
			continue
		case inIdent:
			b.WriteRune(r)
			if r == '"' {
				state = code
			}
			continue
		}
		// Comments separate tokens just like whitespace.
		if r == '-' && i+1 < len(runes) && runes[i+1] == '-' {
			for i < len(runes) && runes[i] != '\n' {
				i++
			}
			pendingSpace = b.Len() > 0
			continue
		}
		if r == '/' && i+1 < len(runes) && runes[i+1] == '*' {
			i += 2
			for i+1 < len(runes) && !(runes[i] == '*' && runes[i+1] == '/') {
				i++
			}
			i++ // land on the trailing '/' (or past the end)
			pendingSpace = b.Len() > 0
			continue
		}
		if unicode.IsSpace(r) {
			pendingSpace = b.Len() > 0
			continue
		}
		if pendingSpace {
			b.WriteByte(' ')
			pendingSpace = false
		}
		switch r {
		case '\'':
			state = inString
			b.WriteRune(r)
		case '"':
			state = inIdent
			b.WriteRune(r)
		default:
			b.WriteRune(unicode.ToLower(r))
		}
	}
	out := b.String()
	for strings.HasSuffix(out, ";") {
		out = strings.TrimRight(strings.TrimSuffix(out, ";"), " ")
	}
	return out
}
