package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New[int](64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("refresh lost: got %d", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits 1 miss", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity 16 over 16 shards = 1 entry per shard: any two keys on the
	// same shard evict each other, and the most recent survives.
	c := New[string](shardCount)
	for i := 0; i < 10*shardCount; i++ {
		c.Put(fmt.Sprintf("k%d", i), "v")
	}
	if c.Len() > shardCount {
		t.Fatalf("Len() = %d, want <= %d", c.Len(), shardCount)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("expected evictions, got %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%64)
				c.Put(key, i)
				if v, ok := c.Get(key); ok && v < 0 {
					t.Errorf("bad value %d", v)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Fatal("cache empty after concurrent writes")
	}
}

func TestNormalizeSQL(t *testing.T) {
	cases := []struct{ a, b string }{
		{"select * from MOVIES", "SELECT  *\nFROM movies ;"},
		{"select m.title from MOVIES m where m.year > 2000",
			"SELECT M.TITLE FROM movies M WHERE m.year > 2000;;"},
	}
	for _, tc := range cases {
		if NormalizeSQL(tc.a) != NormalizeSQL(tc.b) {
			t.Errorf("Normalize(%q) = %q != Normalize(%q) = %q",
				tc.a, NormalizeSQL(tc.a), tc.b, NormalizeSQL(tc.b))
		}
	}
	// Quoted literals keep their case; the same query with a different
	// literal must NOT share a key.
	a := NormalizeSQL("select * from ACTOR a where a.name = 'Brad Pitt'")
	b := NormalizeSQL("select * from ACTOR a where a.name = 'brad pitt'")
	if a == b {
		t.Fatalf("literals were case-folded: %q", a)
	}
	if NormalizeSQL("select 'a  b'") != "select 'a  b'" {
		t.Fatalf("whitespace inside literal collapsed: %q", NormalizeSQL("select 'a  b'"))
	}
	// Comments are token separators, exactly as in the lexer: a commented
	// statement shares its key with the uncommented form, and an
	// apostrophe inside a comment must not derail string tracking.
	if NormalizeSQL("select a -- trailing note\nfrom T") != NormalizeSQL("select a from T") {
		t.Errorf("line comment changed the key: %q", NormalizeSQL("select a -- trailing note\nfrom T"))
	}
	if NormalizeSQL("select a /* block */ from T") != NormalizeSQL("select a from T") {
		t.Errorf("block comment changed the key: %q", NormalizeSQL("select a /* block */ from T"))
	}
	if NormalizeSQL("-- don't trip\nselect 'ABC'") != "select 'ABC'" {
		t.Errorf("apostrophe in comment corrupted normalization: %q",
			NormalizeSQL("-- don't trip\nselect 'ABC'"))
	}
	if NormalizeSQL("select 1--1") != "select 1" {
		t.Errorf("1--1 must lex as 1 + comment: %q", NormalizeSQL("select 1--1"))
	}
	if NormalizeSQL("select a / b from T") != "select a / b from t" {
		t.Errorf("division mangled: %q", NormalizeSQL("select a / b from T"))
	}
	// Double-quoted identifiers keep exact bytes: different idents must not
	// collide, and case inside quotes is preserved.
	if NormalizeSQL(`select "a  b" from T`) == NormalizeSQL(`select "a b" from T`) {
		t.Fatal("distinct quoted identifiers share a cache key")
	}
	if NormalizeSQL(`select "Col" from T`) == NormalizeSQL(`select "col" from T`) {
		t.Fatal("quoted identifier case was folded")
	}
}

func TestClear(t *testing.T) {
	c := New[int](64)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len() = %d after Clear", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry survived Clear")
	}
}
