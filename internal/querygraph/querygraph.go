// Package querygraph builds the paper's graph-based query representation
// (§3.2, Fig. 2): every relation instance (tuple variable) of a SELECT
// statement becomes a parameterized class with <<FROM>>, <<SELECT>>,
// <<WHERE>> and <<HAVING>> compartments plus <<GROUP BY>> / <<ORDER BY>>
// notes; predicates connecting two tuple variables become join edges
// (marked as foreign-key joins when they follow a declared FK); and nested
// subqueries become attached blocks (the paper's NQ1 in Fig. 7) linked by
// their connector (IN, EXISTS, quantified or scalar comparison).
package querygraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sqlparser"
)

// Box is one parameterized class: a tuple variable with its compartments.
type Box struct {
	// Alias is the tuple variable (the paper's relation_alias); equals the
	// relation name when the query declares no alias.
	Alias string
	// Relation is the relation name (the <<FROM>> compartment).
	Relation string
	// Select lists this box's output attributes in the paper's
	// "alias.relation.attribute: alias" form.
	Select []string
	// Where lists unary constraints — predicates referencing only this
	// tuple variable.
	Where []string
	// Having lists this box's HAVING constraints.
	Having []string
	// GroupBy and OrderBy are the attached notes.
	GroupBy []string
	OrderBy []string
}

// JoinEdge connects two tuple variables through a predicate.
type JoinEdge struct {
	From, To string // aliases
	// Cond is the predicate text, e.g. "m.id = c.mid".
	Cond string
	// FK reports whether the predicate follows a declared foreign key —
	// the distinction between Q1/Q2-style graphs and the non-FK joins of
	// Q3/Q4 that the paper calls out.
	FK bool
	// Equi reports whether the predicate is an equality between two
	// columns.
	Equi bool
}

// Connector labels how a nested block attaches to its parent.
type Connector int

// Connector kinds.
const (
	ConnIn Connector = iota
	ConnNotIn
	ConnExists
	ConnNotExists
	ConnAll
	ConnAny
	ConnScalar
)

// String renders the connector.
func (c Connector) String() string {
	switch c {
	case ConnIn:
		return "IN"
	case ConnNotIn:
		return "NOT IN"
	case ConnExists:
		return "EXISTS"
	case ConnNotExists:
		return "NOT EXISTS"
	case ConnAll:
		return "ALL"
	case ConnAny:
		return "ANY"
	default:
		return "scalar"
	}
}

// Nested is a subquery block attached to the parent graph.
type Nested struct {
	// Label names the block (NQ1, NQ2, ... in document order).
	Label string
	// Graph is the subquery's own query graph.
	Graph *Graph
	// Conn is the attachment connector.
	Conn Connector
	// Link is the textual attachment, e.g. "m.id IN NQ1" or "1 < NQ1".
	Link string
	// Correlations lists predicates inside the subquery that reference
	// parent tuple variables, e.g. "g.mid = m.id".
	Correlations []string
	// FromHaving marks blocks attached under HAVING rather than WHERE.
	FromHaving bool
}

// Graph is the query graph of one SELECT block.
type Graph struct {
	// Stmt is the statement the graph was built from.
	Stmt *sqlparser.SelectStmt
	// Boxes holds one entry per tuple variable, in FROM order.
	Boxes []*Box
	// Joins holds the binary predicates connecting tuple variables.
	Joins []JoinEdge
	// Nested holds attached subquery blocks in discovery order.
	Nested []*Nested
	// Outputs lists the query's projected expressions (SQL text).
	Outputs []string

	schema *catalog.Schema
	byName map[string]*Box
}

// Build constructs the query graph of sel against schema. The schema may be
// nil; FK classification of join edges then degrades to non-FK.
func Build(sel *sqlparser.SelectStmt, schema *catalog.Schema) (*Graph, error) {
	return build(sel, schema, newLabeler())
}

type labeler struct{ n int }

func newLabeler() *labeler { return &labeler{} }

func (l *labeler) next() string {
	l.n++
	return fmt.Sprintf("NQ%d", l.n)
}

func build(sel *sqlparser.SelectStmt, schema *catalog.Schema, lab *labeler) (*Graph, error) {
	g := &Graph{Stmt: sel, schema: schema, byName: make(map[string]*Box)}

	// Boxes from FROM (flattening explicit join chains).
	var addRef func(t *sqlparser.TableRef) error
	addRef = func(t *sqlparser.TableRef) error {
		b := &Box{Alias: t.Name(), Relation: t.Relation}
		key := strings.ToLower(b.Alias)
		if _, dup := g.byName[key]; dup {
			return fmt.Errorf("querygraph: duplicate tuple variable %q", b.Alias)
		}
		g.byName[key] = b
		g.Boxes = append(g.Boxes, b)
		if t.Join != nil {
			if err := addRef(t.Join.Right); err != nil {
				return err
			}
		}
		return nil
	}
	for _, t := range sel.From {
		if err := addRef(t); err != nil {
			return nil, err
		}
	}

	// SELECT items.
	for _, it := range sel.Items {
		g.Outputs = append(g.Outputs, it.SQL())
		g.assignSelectItem(it)
	}

	// WHERE conjuncts, including explicit-join ON conditions.
	conjuncts := sqlparser.Conjuncts(sel.Where)
	for _, t := range sel.From {
		for j := t.Join; j != nil; j = j.Right.Join {
			if j.On != nil {
				conjuncts = append(conjuncts, sqlparser.Conjuncts(j.On)...)
			}
		}
	}
	for _, c := range conjuncts {
		if err := g.assignConjunct(c, lab, false); err != nil {
			return nil, err
		}
	}

	// GROUP BY notes.
	for _, gb := range sel.GroupBy {
		if box := g.boxOf(gb); box != nil {
			box.GroupBy = append(box.GroupBy, g.qualify(gb))
		} else if len(g.Boxes) > 0 {
			g.Boxes[0].GroupBy = append(g.Boxes[0].GroupBy, gb.SQL())
		}
	}

	// HAVING conjuncts.
	for _, c := range sqlparser.Conjuncts(sel.Having) {
		if err := g.assignConjunct(c, lab, true); err != nil {
			return nil, err
		}
	}

	// ORDER BY notes.
	for _, ob := range sel.OrderBy {
		if box := g.boxOf(ob.Expr); box != nil {
			box.OrderBy = append(box.OrderBy, g.qualify(ob.Expr))
		} else if len(g.Boxes) > 0 {
			g.Boxes[0].OrderBy = append(g.Boxes[0].OrderBy, ob.SQL())
		}
	}

	return g, nil
}

// assignSelectItem files a select item into the box of its tuple variable;
// itemless expressions (count(*), literals) go to the last box, matching
// Fig. 7's placement of count(*) in the CAST class.
func (g *Graph) assignSelectItem(it sqlparser.SelectItem) {
	entry := it.Expr.SQL()
	if c, ok := it.Expr.(*sqlparser.ColumnRef); ok && c.Column != "*" {
		if box := g.box(c.Table); box != nil {
			entry = fmt.Sprintf("%s.%s.%s", box.Alias, box.Relation, c.Column)
			if it.Alias != "" {
				entry += ": " + it.Alias
			}
			box.Select = append(box.Select, entry)
			return
		}
	}
	if box := g.boxOf(it.Expr); box != nil {
		box.Select = append(box.Select, entry)
		return
	}
	if len(g.Boxes) > 0 {
		g.Boxes[len(g.Boxes)-1].Select = append(g.Boxes[len(g.Boxes)-1].Select, entry)
	}
}

// box resolves an alias (or relation name) to its box.
func (g *Graph) box(name string) *Box {
	if name == "" {
		return nil
	}
	if b, ok := g.byName[strings.ToLower(name)]; ok {
		return b
	}
	// Allow referring to a box by relation name when unique.
	var found *Box
	for _, b := range g.Boxes {
		if strings.EqualFold(b.Relation, name) {
			if found != nil {
				return nil
			}
			found = b
		}
	}
	return found
}

// boxOf returns the single box an expression's column references resolve to,
// or nil when the expression spans several (or none).
func (g *Graph) boxOf(e sqlparser.Expr) *Box {
	var only *Box
	multiple := false
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if c, ok := x.(*sqlparser.ColumnRef); ok {
			b := g.box(c.Table)
			if b == nil && c.Table == "" {
				b = g.boxByColumn(c.Column)
			}
			if b == nil {
				multiple = true
				return false
			}
			if only != nil && only != b {
				multiple = true
				return false
			}
			only = b
		}
		return true
	})
	if multiple {
		return nil
	}
	return only
}

// boxByColumn finds the unique box whose relation has the column.
func (g *Graph) boxByColumn(col string) *Box {
	if g.schema == nil {
		return nil
	}
	var found *Box
	for _, b := range g.Boxes {
		rel := g.schema.Relation(b.Relation)
		if rel != nil && rel.AttrIndex(col) >= 0 {
			if found != nil {
				return nil
			}
			found = b
		}
	}
	return found
}

// qualify renders a column expression in the paper's alias.relation.attr
// form when possible.
func (g *Graph) qualify(e sqlparser.Expr) string {
	if c, ok := e.(*sqlparser.ColumnRef); ok {
		if b := g.box(c.Table); b != nil {
			return fmt.Sprintf("%s.%s.%s", b.Alias, b.Relation, c.Column)
		}
	}
	return e.SQL()
}

// assignConjunct files one WHERE/HAVING conjunct: join edge, unary
// constraint, or nested block.
func (g *Graph) assignConjunct(c sqlparser.Expr, lab *labeler, having bool) error {
	// Nested subqueries first.
	switch x := c.(type) {
	case *sqlparser.InExpr:
		if x.Subquery != nil {
			conn := ConnIn
			if x.Negate {
				conn = ConnNotIn
			}
			return g.attachNested(x.Subquery, conn, x.Subject.SQL(), lab, having)
		}
	case *sqlparser.ExistsExpr:
		conn := ConnExists
		if x.Negate {
			conn = ConnNotExists
		}
		return g.attachNested(x.Subquery, conn, "", lab, having)
	case *sqlparser.QuantifiedExpr:
		conn := ConnAny
		if x.All {
			conn = ConnAll
		}
		link := fmt.Sprintf("%s %s %s", x.Subject.SQL(), x.Op, conn)
		return g.attachNested(x.Subquery, conn, link, lab, having)
	case *sqlparser.BinaryExpr:
		if sub, side := scalarSubquerySide(x); sub != nil {
			var other sqlparser.Expr
			if side == "right" {
				other = x.Left
			} else {
				other = x.Right
			}
			link := fmt.Sprintf("%s %s NQ", other.SQL(), x.Op)
			return g.attachNested(sub, ConnScalar, link, lab, having)
		}
	}

	// Join edge: a comparison between columns of two distinct boxes.
	if b, ok := c.(*sqlparser.BinaryExpr); ok && b.Op.IsComparison() {
		l, lok := b.Left.(*sqlparser.ColumnRef)
		r, rok := b.Right.(*sqlparser.ColumnRef)
		if lok && rok {
			lb := g.resolveBoxForRef(l)
			rb := g.resolveBoxForRef(r)
			if lb != nil && rb != nil && lb != rb {
				g.Joins = append(g.Joins, JoinEdge{
					From: lb.Alias, To: rb.Alias,
					Cond: c.SQL(),
					FK:   b.Op == sqlparser.OpEq && g.isFKJoin(lb, l.Column, rb, r.Column),
					Equi: b.Op == sqlparser.OpEq,
				})
				return nil
			}
		}
	}

	// Unary constraint: all refs inside a single box.
	if box := g.boxOf(c); box != nil {
		if having {
			box.Having = append(box.Having, c.SQL())
		} else {
			box.Where = append(box.Where, c.SQL())
		}
		return nil
	}
	// Fallback: attach to the first box (e.g. literal-only predicates).
	if len(g.Boxes) > 0 {
		if having {
			g.Boxes[0].Having = append(g.Boxes[0].Having, c.SQL())
		} else {
			g.Boxes[0].Where = append(g.Boxes[0].Where, c.SQL())
		}
		return nil
	}
	return fmt.Errorf("querygraph: cannot place predicate %q", c.SQL())
}

func (g *Graph) resolveBoxForRef(c *sqlparser.ColumnRef) *Box {
	if b := g.box(c.Table); b != nil {
		return b
	}
	if c.Table == "" {
		return g.boxByColumn(c.Column)
	}
	return nil
}

func scalarSubquerySide(b *sqlparser.BinaryExpr) (*sqlparser.SelectStmt, string) {
	if !b.Op.IsComparison() {
		return nil, ""
	}
	if s, ok := b.Right.(*sqlparser.SubqueryExpr); ok {
		return s.Subquery, "right"
	}
	if s, ok := b.Left.(*sqlparser.SubqueryExpr); ok {
		return s.Subquery, "left"
	}
	return nil, ""
}

// isFKJoin reports whether lb.lcol = rb.rcol follows a declared foreign key
// in either direction.
func (g *Graph) isFKJoin(lb *Box, lcol string, rb *Box, rcol string) bool {
	if g.schema == nil {
		return false
	}
	lRel := g.schema.Relation(lb.Relation)
	rRel := g.schema.Relation(rb.Relation)
	if lRel == nil || rRel == nil {
		return false
	}
	covers := func(from *catalog.Relation, fcol string, to *catalog.Relation, tcol string) bool {
		for _, fk := range from.ForeignKey {
			if !strings.EqualFold(fk.RefRelation, to.Name) {
				continue
			}
			for i := range fk.Attrs {
				if strings.EqualFold(fk.Attrs[i], fcol) && strings.EqualFold(fk.RefAttrs[i], tcol) {
					return true
				}
			}
		}
		return false
	}
	return covers(lRel, lcol, rRel, rcol) || covers(rRel, rcol, lRel, lcol)
}

func (g *Graph) attachNested(sub *sqlparser.SelectStmt, conn Connector, link string, lab *labeler, having bool) error {
	label := lab.next()
	inner, err := build(sub, g.schema, lab)
	if err != nil {
		return err
	}
	if link == "" {
		link = conn.String() + " " + label
	} else {
		link = strings.Replace(link, "NQ", label, 1)
		if !strings.Contains(link, label) {
			link += " " + label
		}
	}
	blk := &Nested{
		Label: label, Graph: inner, Conn: conn, Link: link, FromHaving: having,
	}
	blk.Correlations = correlations(inner, g)
	g.Nested = append(g.Nested, blk)
	return nil
}

// correlations finds predicates of the inner graph that reference a tuple
// variable of the parent (an alias the inner query does not declare).
func correlations(inner, parent *Graph) []string {
	var out []string
	seen := map[string]bool{}
	collect := func(e sqlparser.Expr) {
		refsOuter := false
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			if c, ok := x.(*sqlparser.ColumnRef); ok && c.Table != "" {
				if inner.box(c.Table) == nil && parent.box(c.Table) != nil {
					refsOuter = true
				}
			}
			return true
		})
		if refsOuter && !seen[e.SQL()] {
			seen[e.SQL()] = true
			out = append(out, e.SQL())
		}
	}
	for _, c := range sqlparser.Conjuncts(inner.Stmt.Where) {
		collect(c)
	}
	for _, c := range sqlparser.Conjuncts(inner.Stmt.Having) {
		collect(c)
	}
	return out
}

// ---------------------------------------------------------------------------
// Structure queries
// ---------------------------------------------------------------------------

// MultiInstanceRelations returns relations appearing as more than one tuple
// variable (Q3's two CAST and two ACTOR instances).
func (g *Graph) MultiInstanceRelations() []string {
	count := map[string]int{}
	for _, b := range g.Boxes {
		count[strings.ToUpper(b.Relation)]++
	}
	var out []string
	for rel, n := range count {
		if n > 1 {
			out = append(out, rel)
		}
	}
	sort.Strings(out)
	return out
}

// HasCycle reports whether the undirected multigraph of join edges contains
// a cycle (including the two-edge cycle of Q4, where two distinct
// predicates connect the same pair of tuple variables).
func (g *Graph) HasCycle() bool {
	adj := map[string][]int{}
	for i, j := range g.Joins {
		adj[strings.ToLower(j.From)] = append(adj[strings.ToLower(j.From)], i)
		adj[strings.ToLower(j.To)] = append(adj[strings.ToLower(j.To)], i)
	}
	visited := map[string]bool{}
	var dfs func(node string, viaEdge int) bool
	dfs = func(node string, viaEdge int) bool {
		visited[node] = true
		for _, ei := range adj[node] {
			if ei == viaEdge {
				continue
			}
			e := g.Joins[ei]
			next := strings.ToLower(e.To)
			if next == node {
				next = strings.ToLower(e.From)
			}
			if next == node {
				return true // self loop
			}
			if visited[next] {
				return true
			}
			if dfs(next, ei) {
				return true
			}
		}
		return false
	}
	for _, b := range g.Boxes {
		key := strings.ToLower(b.Alias)
		if !visited[key] {
			if dfs(key, -1) {
				return true
			}
		}
	}
	return false
}

// IsPath reports whether the join edges form a simple path over all boxes:
// connected, acyclic, max degree 2 (the paper's path queries, §3.3.1).
func (g *Graph) IsPath() bool {
	if len(g.Boxes) <= 1 {
		return true
	}
	if len(g.Joins) != len(g.Boxes)-1 || g.HasCycle() {
		return false
	}
	deg := map[string]int{}
	for _, j := range g.Joins {
		deg[strings.ToLower(j.From)]++
		deg[strings.ToLower(j.To)]++
	}
	for _, b := range g.Boxes {
		if deg[strings.ToLower(b.Alias)] > 2 {
			return false
		}
	}
	return g.connected()
}

// IsConnectedAcyclic reports whether the join graph is a tree spanning all
// boxes (the paper's subgraph queries, §3.3.2).
func (g *Graph) IsConnectedAcyclic() bool {
	if len(g.Boxes) <= 1 {
		return true
	}
	return len(g.Joins) == len(g.Boxes)-1 && !g.HasCycle() && g.connected()
}

func (g *Graph) connected() bool {
	if len(g.Boxes) == 0 {
		return true
	}
	adj := map[string][]string{}
	for _, j := range g.Joins {
		f, t := strings.ToLower(j.From), strings.ToLower(j.To)
		adj[f] = append(adj[f], t)
		adj[t] = append(adj[t], f)
	}
	visited := map[string]bool{}
	stack := []string{strings.ToLower(g.Boxes[0].Alias)}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[n] {
			continue
		}
		visited[n] = true
		stack = append(stack, adj[n]...)
	}
	return len(visited) == len(g.Boxes)
}

// AllJoinsFK reports whether every join edge follows a foreign key.
func (g *Graph) AllJoinsFK() bool {
	for _, j := range g.Joins {
		if !j.FK {
			return false
		}
	}
	return true
}

// HasGrouping reports whether the query (not its subqueries) groups or
// aggregates.
func (g *Graph) HasGrouping() bool {
	if len(g.Stmt.GroupBy) > 0 || g.Stmt.Having != nil {
		return true
	}
	for _, it := range g.Stmt.Items {
		if sqlparser.HasAggregate(it.Expr) {
			return true
		}
	}
	return false
}
