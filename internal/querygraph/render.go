package querygraph

import (
	"fmt"
	"strings"
)

// ASCII renders the query graph as the paper's Fig. 3–7 boxes: one
// parameterized class per tuple variable with its compartments, the join
// edges, and nested blocks indented below their parent.
func (g *Graph) ASCII() string {
	var b strings.Builder
	g.ascii(&b, "")
	return b.String()
}

func (g *Graph) ascii(b *strings.Builder, indent string) {
	for _, box := range g.Boxes {
		writeBox(b, indent, box)
	}
	for _, j := range g.Joins {
		kind := "non-FK"
		if j.FK {
			kind = "FK"
		}
		fmt.Fprintf(b, "%s%s --[%s]-- %s   (%s)\n", indent, j.From, j.Cond, j.To, kind)
	}
	for _, n := range g.Nested {
		clause := "WHERE"
		if n.FromHaving {
			clause = "HAVING"
		}
		fmt.Fprintf(b, "%s%s: attached under %s via %s\n", indent, n.Label, clause, n.Link)
		for _, c := range n.Correlations {
			fmt.Fprintf(b, "%s  correlation: %s\n", indent, c)
		}
		n.Graph.ascii(b, indent+"    ")
	}
}

func writeBox(b *strings.Builder, indent string, box *Box) {
	lines := []string{
		fmt.Sprintf("<<alias>> %s", box.Alias),
		fmt.Sprintf("<<FROM>> %s", box.Relation),
	}
	section := func(tag string, items []string) {
		if len(items) == 0 {
			return
		}
		lines = append(lines, fmt.Sprintf("<<%s>>", tag))
		for _, it := range items {
			lines = append(lines, "  "+it)
		}
	}
	section("SELECT", box.Select)
	section("WHERE", box.Where)
	section("HAVING", box.Having)
	section("GROUP BY", box.GroupBy)
	section("ORDER BY", box.OrderBy)

	width := 0
	for _, l := range lines {
		if len(l) > width {
			width = len(l)
		}
	}
	border := indent + "+" + strings.Repeat("-", width+2) + "+\n"
	b.WriteString(border)
	for _, l := range lines {
		fmt.Fprintf(b, "%s| %-*s |\n", indent, width, l)
	}
	b.WriteString(border)
}

// DOT renders the query graph in Graphviz format with record-shaped nodes
// per tuple variable and labeled join edges; nested blocks render as
// clusters.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph query {\n  rankdir=LR;\n  node [shape=record, fontname=\"Helvetica\"];\n")
	g.dotBody(&b, "", "")
	b.WriteString("}\n")
	return b.String()
}

func (g *Graph) dotBody(b *strings.Builder, prefix, indent string) {
	if indent == "" {
		indent = "  "
	}
	id := func(alias string) string { return dotID(prefix + alias) }
	for _, box := range g.Boxes {
		var parts []string
		parts = append(parts, fmt.Sprintf("\\<\\<FROM\\>\\> %s (%s)", box.Relation, box.Alias))
		section := func(tag string, items []string) {
			if len(items) == 0 {
				return
			}
			esc := make([]string, len(items))
			for i, it := range items {
				esc[i] = dotEscape(it)
			}
			parts = append(parts, fmt.Sprintf("\\<\\<%s\\>\\> %s", tag, strings.Join(esc, "\\l")))
		}
		section("SELECT", box.Select)
		section("WHERE", box.Where)
		section("HAVING", box.Having)
		section("GROUP BY", box.GroupBy)
		section("ORDER BY", box.OrderBy)
		fmt.Fprintf(b, "%s%s [label=\"{%s}\"];\n", indent, id(box.Alias), strings.Join(parts, "|"))
	}
	for _, j := range g.Joins {
		style := ""
		if !j.FK {
			style = ", style=dashed"
		}
		fmt.Fprintf(b, "%s%s -> %s [label=\"%s\", dir=none%s];\n",
			indent, id(j.From), id(j.To), dotEscape(j.Cond), style)
	}
	for _, n := range g.Nested {
		fmt.Fprintf(b, "%ssubgraph cluster_%s {\n%s  label=\"%s: %s\";\n",
			indent, dotID(prefix+n.Label), indent, n.Label, dotEscape(n.Link))
		n.Graph.dotBody(b, prefix+n.Label+"_", indent+"  ")
		fmt.Fprintf(b, "%s}\n", indent)
		// Attachment edge from the parent's first box to the nested block's
		// first box, when both exist.
		if len(g.Boxes) > 0 && len(n.Graph.Boxes) > 0 {
			fmt.Fprintf(b, "%s%s -> %s [label=\"%s\", style=dotted];\n",
				indent, id(g.Boxes[0].Alias), dotID(prefix+n.Label+"_"+n.Graph.Boxes[0].Alias), dotEscape(n.Conn.String()))
		}
	}
}

func dotID(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9') {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return "n_" + b.String()
}

func dotEscape(s string) string {
	r := strings.NewReplacer(`"`, `\"`, "<", "\\<", ">", "\\>", "|", "\\|", "{", "\\{", "}", "\\}")
	return r.Replace(s)
}
