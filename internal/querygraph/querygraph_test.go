package querygraph

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sqlparser"
)

func buildQ(t *testing.T, label string) *Graph {
	t.Helper()
	sel, err := sqlparser.ParseSelect(sqlparser.PaperQueries[label])
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	schema := dataset.MovieSchema()
	if label == "Q0" {
		schema = dataset.EmpDeptSchema()
	}
	g, err := Build(sel, schema)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	return g
}

// TestQ1Figure3 checks the structure of Fig. 3: three boxes in a path, FK
// joins, the actor-name constraint in the ACTOR box, title in MOVIES.
func TestQ1Figure3(t *testing.T) {
	g := buildQ(t, "Q1")
	if len(g.Boxes) != 3 {
		t.Fatalf("boxes = %d", len(g.Boxes))
	}
	if g.Boxes[0].Alias != "m" || g.Boxes[0].Relation != "MOVIES" {
		t.Errorf("box0 = %+v", g.Boxes[0])
	}
	if len(g.Boxes[0].Select) != 1 || !strings.Contains(g.Boxes[0].Select[0], "m.MOVIES.title") {
		t.Errorf("MOVIES select = %v", g.Boxes[0].Select)
	}
	aBox := g.Boxes[2]
	if len(aBox.Where) != 1 || !strings.Contains(aBox.Where[0], "Brad Pitt") {
		t.Errorf("ACTOR where = %v", aBox.Where)
	}
	if len(g.Joins) != 2 || !g.AllJoinsFK() {
		t.Errorf("joins = %+v", g.Joins)
	}
	if !g.IsPath() {
		t.Error("Q1 must be a path")
	}
	if g.HasCycle() || len(g.MultiInstanceRelations()) != 0 || g.HasGrouping() {
		t.Error("Q1 extra structure detected")
	}
}

// TestQ2Figure4 checks Fig. 4: six boxes, five FK joins, a tree that is not
// a path (MOVIES has degree 3).
func TestQ2Figure4(t *testing.T) {
	g := buildQ(t, "Q2")
	if len(g.Boxes) != 6 {
		t.Fatalf("boxes = %d", len(g.Boxes))
	}
	if len(g.Joins) != 5 || !g.AllJoinsFK() {
		t.Fatalf("joins = %+v", g.Joins)
	}
	if g.IsPath() {
		t.Error("Q2 is not a path")
	}
	if !g.IsConnectedAcyclic() {
		t.Error("Q2 must be a connected acyclic subgraph")
	}
}

// TestQ3Figure5 checks Fig. 5: repeated CAST/ACTOR instances and the non-FK
// comparison a1.id > a2.id.
func TestQ3Figure5(t *testing.T) {
	g := buildQ(t, "Q3")
	if len(g.Boxes) != 5 {
		t.Fatalf("boxes = %d", len(g.Boxes))
	}
	multi := g.MultiInstanceRelations()
	if len(multi) != 2 || multi[0] != "ACTOR" || multi[1] != "CAST" {
		t.Errorf("multi-instance = %v", multi)
	}
	if g.AllJoinsFK() {
		t.Error("a1.id > a2.id must be a non-FK edge")
	}
	var nonFK int
	for _, j := range g.Joins {
		if !j.FK {
			nonFK++
			if j.Equi {
				t.Errorf("inequality marked equi: %+v", j)
			}
		}
	}
	if nonFK != 1 {
		t.Errorf("non-FK edges = %d", nonFK)
	}
	if g.HasCycle() {
		// a1.id > a2.id closes a cycle M-C1-A1 > A2-C2-M; actually the
		// comparison edge does close a cycle through the path.
		t.Log("Q3 comparison edge closes a cycle through the shared movie; acceptable")
	}
}

// TestQ4Figure6 checks Fig. 6: two boxes with BOTH an FK join and the
// non-FK join c.role = m.title forming a two-edge cycle.
func TestQ4Figure6(t *testing.T) {
	g := buildQ(t, "Q4")
	if len(g.Boxes) != 2 {
		t.Fatalf("boxes = %d", len(g.Boxes))
	}
	if len(g.Joins) != 2 {
		t.Fatalf("joins = %+v", g.Joins)
	}
	if !g.HasCycle() {
		t.Error("Q4 must contain a cycle")
	}
	var fk, nonFK int
	for _, j := range g.Joins {
		if j.FK {
			fk++
		} else {
			nonFK++
		}
	}
	if fk != 1 || nonFK != 1 {
		t.Errorf("edge kinds: fk=%d nonFK=%d", fk, nonFK)
	}
}

// TestQ5NestedBlocks checks that Q5 produces a two-level nested chain.
func TestQ5NestedBlocks(t *testing.T) {
	g := buildQ(t, "Q5")
	if len(g.Nested) != 1 {
		t.Fatalf("nested = %d", len(g.Nested))
	}
	n1 := g.Nested[0]
	if n1.Conn != ConnIn || n1.Label != "NQ1" {
		t.Errorf("block1 = %+v", n1)
	}
	if !strings.Contains(n1.Link, "m.id") || !strings.Contains(n1.Link, "NQ1") {
		t.Errorf("link = %q", n1.Link)
	}
	if len(n1.Graph.Nested) != 1 || n1.Graph.Nested[0].Label != "NQ2" {
		t.Fatalf("inner nesting = %+v", n1.Graph.Nested)
	}
}

// TestQ6DoubleNotExists checks the division shape: NOT EXISTS with inner
// NOT EXISTS and correlations recorded.
func TestQ6DoubleNotExists(t *testing.T) {
	g := buildQ(t, "Q6")
	if len(g.Nested) != 1 || g.Nested[0].Conn != ConnNotExists {
		t.Fatalf("outer block = %+v", g.Nested)
	}
	inner := g.Nested[0].Graph
	if len(inner.Nested) != 1 || inner.Nested[0].Conn != ConnNotExists {
		t.Fatalf("inner block = %+v", inner.Nested)
	}
	// The innermost query correlates on both g2.mid = m.id and
	// g2.genre = g1.genre.
	innermost := inner.Nested[0]
	if len(innermost.Correlations) == 0 {
		t.Error("no correlations recorded on innermost block")
	}
}

// TestQ7Figure7 checks Fig. 7: group-by note on the MOVIES box, count(*) in
// the CAST box, and the HAVING-attached scalar block NQ1 over GENRE.
func TestQ7Figure7(t *testing.T) {
	g := buildQ(t, "Q7")
	if len(g.Boxes) != 2 {
		t.Fatalf("boxes = %d", len(g.Boxes))
	}
	m := g.Boxes[0]
	if len(m.GroupBy) != 2 || !strings.Contains(m.GroupBy[0], "m.MOVIES.id") {
		t.Errorf("group-by note = %v", m.GroupBy)
	}
	c := g.Boxes[1]
	found := false
	for _, s := range c.Select {
		if strings.Contains(s, "COUNT(*)") {
			found = true
		}
	}
	if !found {
		t.Errorf("count(*) not in CAST box: %v", c.Select)
	}
	if len(g.Nested) != 1 {
		t.Fatalf("nested = %d", len(g.Nested))
	}
	blk := g.Nested[0]
	if !blk.FromHaving || blk.Conn != ConnScalar {
		t.Errorf("having block = %+v", blk)
	}
	if !strings.Contains(blk.Link, "1 <") || !strings.Contains(blk.Link, "NQ1") {
		t.Errorf("link = %q", blk.Link)
	}
	if len(blk.Graph.Boxes) != 1 || blk.Graph.Boxes[0].Relation != "GENRE" {
		t.Errorf("nested box = %+v", blk.Graph.Boxes)
	}
	if len(blk.Correlations) == 0 {
		t.Error("no correlation recorded for g.mid = m.id")
	}
}

func TestQ8Q9Structure(t *testing.T) {
	g8 := buildQ(t, "Q8")
	if !g8.HasGrouping() {
		t.Error("Q8 must group")
	}
	g9 := buildQ(t, "Q9")
	if len(g9.Nested) != 1 || g9.Nested[0].Conn != ConnAll {
		t.Fatalf("Q9 block = %+v", g9.Nested)
	}
	if !strings.Contains(g9.Nested[0].Link, "<= ALL") {
		t.Errorf("Q9 link = %q", g9.Nested[0].Link)
	}
	if len(g9.Nested[0].Graph.MultiInstanceRelations()) != 1 {
		t.Errorf("Q9 subquery multi-instance = %v", g9.Nested[0].Graph.MultiInstanceRelations())
	}
}

func TestQ0EmpDept(t *testing.T) {
	g := buildQ(t, "Q0")
	if len(g.Boxes) != 3 {
		t.Fatalf("boxes = %d", len(g.Boxes))
	}
	multi := g.MultiInstanceRelations()
	if len(multi) != 1 || multi[0] != "EMP" {
		t.Errorf("multi-instance = %v", multi)
	}
	if g.AllJoinsFK() {
		t.Error("e1.sal > e2.sal must be non-FK")
	}
}

func TestASCIIRender(t *testing.T) {
	g := buildQ(t, "Q1")
	out := g.ASCII()
	for _, want := range []string{
		"<<FROM>> MOVIES", "<<alias>> m", "<<SELECT>>",
		"m.MOVIES.title", "a.name = 'Brad Pitt'",
		"--[m.id = c.mid]--", "(FK)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII missing %q:\n%s", want, out)
		}
	}
}

func TestASCIINestedRender(t *testing.T) {
	g := buildQ(t, "Q7")
	out := g.ASCII()
	for _, want := range []string{
		"NQ1: attached under HAVING", "correlation: g.mid = m.id",
		"<<GROUP BY>>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII missing %q:\n%s", want, out)
		}
	}
}

func TestDOTRender(t *testing.T) {
	for _, label := range []string{"Q1", "Q3", "Q4", "Q7"} {
		g := buildQ(t, label)
		dot := g.DOT()
		if !strings.HasPrefix(dot, "digraph query {") || !strings.HasSuffix(dot, "}\n") {
			t.Errorf("%s: malformed DOT", label)
		}
		if !strings.Contains(dot, "shape=record") {
			t.Errorf("%s: no record nodes", label)
		}
	}
	g7 := buildQ(t, "Q7")
	if !strings.Contains(g7.DOT(), "subgraph cluster_") {
		t.Error("Q7 DOT missing nested cluster")
	}
	g3 := buildQ(t, "Q3")
	if !strings.Contains(g3.DOT(), "style=dashed") {
		t.Error("Q3 DOT missing dashed non-FK edge")
	}
}

func TestBuildWithoutSchema(t *testing.T) {
	sel, _ := sqlparser.ParseSelect(sqlparser.PaperQueries["Q1"])
	g, err := Build(sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.AllJoinsFK() {
		t.Error("without a schema joins cannot be FK-classified")
	}
}

func TestDuplicateAlias(t *testing.T) {
	sel, _ := sqlparser.ParseSelect("select m.title from MOVIES m, CAST m where 1 = 1")
	if _, err := Build(sel, dataset.MovieSchema()); err == nil {
		t.Error("duplicate alias accepted")
	}
}

func TestUnqualifiedColumnResolution(t *testing.T) {
	sel, _ := sqlparser.ParseSelect("select title from MOVIES m where year = 2005")
	g, err := Build(sel, dataset.MovieSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Boxes[0].Select) != 1 {
		t.Errorf("unqualified select not filed: %+v", g.Boxes[0])
	}
	if len(g.Boxes[0].Where) != 1 {
		t.Errorf("unqualified where not filed: %+v", g.Boxes[0])
	}
}

func TestOrderByNote(t *testing.T) {
	sel, _ := sqlparser.ParseSelect("select m.title from MOVIES m order by m.year desc")
	g, err := Build(sel, dataset.MovieSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Boxes[0].OrderBy) != 1 || !strings.Contains(g.Boxes[0].OrderBy[0], "m.MOVIES.year") {
		t.Errorf("order-by note = %v", g.Boxes[0].OrderBy)
	}
}

func TestConnectorString(t *testing.T) {
	cases := map[Connector]string{
		ConnIn: "IN", ConnNotIn: "NOT IN", ConnExists: "EXISTS",
		ConnNotExists: "NOT EXISTS", ConnAll: "ALL", ConnAny: "ANY",
		ConnScalar: "scalar",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestGraphQueriesAllPaperCorpus(t *testing.T) {
	for _, label := range sqlparser.PaperQueryOrder {
		g := buildQ(t, label)
		if len(g.Boxes) == 0 {
			t.Errorf("%s: no boxes", label)
		}
		if out := g.ASCII(); out == "" {
			t.Errorf("%s: empty ASCII render", label)
		}
	}
}

func BenchmarkBuildQ1(b *testing.B) {
	sel, _ := sqlparser.ParseSelect(sqlparser.PaperQueries["Q1"])
	schema := dataset.MovieSchema()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(sel, schema); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildQ7(b *testing.B) {
	sel, _ := sqlparser.ParseSelect(sqlparser.PaperQueries["Q7"])
	schema := dataset.MovieSchema()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(sel, schema); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRenderASCII(b *testing.B) {
	sel, _ := sqlparser.ParseSelect(sqlparser.PaperQueries["Q7"])
	g, err := Build(sel, dataset.MovieSchema())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.ASCII()
	}
}
