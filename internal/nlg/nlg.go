// Package nlg synthesizes sentences from instantiated template clauses. It
// implements the three composition mechanisms the paper develops in §2.2:
//
//  1. Common-expression factoring: "DNAME was born in BLOCATION" and "DNAME
//     was born on BDATE" share the prefix "DNAME was born", so the two
//     clauses fuse into "DNAME was born in BLOCATION on BDATE".
//
//  2. Split-pattern merging: the clauses produced for Ri–Rj1 and Ri–Rj2 are
//     combined into a single sentence whose subordinate clauses attach with
//     relative pronouns — "The movie M1 involves the director D1 who was
//     born in Italy and the actor A1 who is Greek."
//
//  3. Declarative vs. procedural realization: a compact single-sentence
//     rendering when clause structure allows it, and a coalescence of
//     simple sentences otherwise, with pronominalization of repeated
//     subjects.
package nlg

import (
	"strings"

	"repro/internal/lexicon"
)

// EntityKind selects relative and personal pronouns for a clause subject.
type EntityKind int

// Entity kinds.
const (
	Thing  EntityKind = iota // which / it
	Person                   // who / they
)

// Clause is one subject–predicate unit produced by template instantiation.
type Clause struct {
	// Subject is the sentence subject, usually a heading-attribute value
	// ("Woody Allen", "Match Point").
	Subject string
	// Predicate is everything after the subject ("was born in Brooklyn").
	Predicate string
	// Kind drives pronoun choice when the clause is embedded or repeated.
	Kind EntityKind
}

// Text renders the clause as a bare (unterminated) sentence.
func (c Clause) Text() string {
	if c.Subject == "" {
		return c.Predicate
	}
	if c.Predicate == "" {
		return c.Subject
	}
	return c.Subject + " " + c.Predicate
}

// Sentence renders the clause as a capitalized, terminated sentence.
func (c Clause) Sentence() string { return lexicon.Sentence(c.Text()) }

// RelativePronoun returns the pronoun used to embed the clause.
func (k EntityKind) RelativePronoun() string {
	if k == Person {
		return "who"
	}
	return "which"
}

// SubjectPronoun returns the pronoun used when the subject repeats.
func (k EntityKind) SubjectPronoun() string {
	if k == Person {
		return "they"
	}
	return "it"
}

// prepositions that may begin a factored remainder; remainders that all
// start with one concatenate directly ("in Brooklyn on December 1"), others
// need a conjunction.
var prepositions = map[string]bool{
	"in": true, "on": true, "at": true, "from": true, "to": true,
	"with": true, "of": true, "for": true, "by": true, "since": true,
	"near": true, "during": true, "under": true, "about": true,
}

// FactorClauses implements the paper's common-expression resolution: clauses
// with the same subject whose predicates share a common word prefix merge
// into one clause. Clauses with distinct subjects (or no shareable prefix)
// pass through unchanged, preserving input order.
func FactorClauses(clauses []Clause) []Clause {
	if len(clauses) <= 1 {
		return clauses
	}
	var out []Clause
	used := make([]bool, len(clauses))
	for i := 0; i < len(clauses); i++ {
		if used[i] {
			continue
		}
		group := []int{i}
		for j := i + 1; j < len(clauses); j++ {
			if used[j] || clauses[j].Subject != clauses[i].Subject {
				continue
			}
			if len(commonPrefix(clauses[i].Predicate, clauses[j].Predicate)) > 0 {
				group = append(group, j)
			}
		}
		if len(group) == 1 {
			out = append(out, clauses[i])
			continue
		}
		// The shared prefix is the common prefix across the whole group.
		prefix := words(clauses[group[0]].Predicate)
		for _, j := range group[1:] {
			prefix = commonPrefixWords(prefix, words(clauses[j].Predicate))
		}
		if len(prefix) == 0 {
			out = append(out, clauses[i])
			continue
		}
		var remainders []string
		for _, j := range group {
			used[j] = true
			rem := strings.Join(words(clauses[j].Predicate)[len(prefix):], " ")
			if rem != "" {
				remainders = append(remainders, rem)
			}
		}
		merged := strings.Join(prefix, " ")
		if len(remainders) > 0 {
			if allPrepositional(remainders) {
				merged += " " + strings.Join(remainders, " ")
			} else {
				merged += " " + lexicon.JoinAnd(remainders)
			}
		}
		out = append(out, Clause{Subject: clauses[i].Subject, Predicate: merged, Kind: clauses[i].Kind})
	}
	return out
}

func words(s string) []string { return strings.Fields(s) }

func commonPrefix(a, b string) []string {
	return commonPrefixWords(words(a), words(b))
}

func commonPrefixWords(a, b []string) []string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return a[:i]
}

func allPrepositional(rems []string) bool {
	for _, r := range rems {
		f := words(r)
		if len(f) == 0 || !prepositions[strings.ToLower(f[0])] {
			return false
		}
	}
	return true
}

// EmbedRelative attaches sub as a relative clause after the first mention of
// sub.Subject inside head: "... the director D1 and ..." + (D1, "was born in
// Italy") → "... the director D1, who was born in Italy, and ..." without
// the commas when the attachment point is clause-final. The paper's example
// omits commas; we follow it.
func EmbedRelative(head string, sub Clause) string {
	idx := indexWord(head, sub.Subject)
	if idx < 0 {
		// No mention: fall back to appending a separate sentence later;
		// signal by returning head unchanged.
		return head
	}
	end := idx + len(sub.Subject)
	return head[:end] + " " + sub.Kind.RelativePronoun() + " " + sub.Predicate + head[end:]
}

// indexWord finds needle in hay at a word boundary.
func indexWord(hay, needle string) int {
	if needle == "" {
		return -1
	}
	from := 0
	for {
		i := strings.Index(hay[from:], needle)
		if i < 0 {
			return -1
		}
		i += from
		beforeOK := i == 0 || !isWordByte(hay[i-1])
		after := i + len(needle)
		afterOK := after >= len(hay) || !isWordByte(hay[after])
		if beforeOK && afterOK {
			return i
		}
		from = i + 1
	}
}

func isWordByte(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// MergeSplit composes the split-pattern sentence: head introduces the
// entities, and each subordinate clause embeds after its subject's mention.
// Subordinates whose subject is absent from the head become trailing
// sentences instead. The returned string is a full sentence (or several).
func MergeSplit(head string, subs []Clause) string {
	merged := head
	var trailing []Clause
	for _, sub := range subs {
		next := EmbedRelative(merged, sub)
		if next == merged {
			trailing = append(trailing, sub)
			continue
		}
		merged = next
	}
	out := lexicon.Sentence(merged)
	for _, c := range trailing {
		out += " " + c.Sentence()
	}
	return out
}

// Realization selects between the paper's two synthesis styles.
type Realization int

// Realization styles: Compact fuses clauses into declarative sentences;
// Procedural emits one simple sentence per clause.
const (
	Compact Realization = iota
	Procedural
)

// String names the realization.
func (r Realization) String() string {
	if r == Procedural {
		return "procedural"
	}
	return "compact"
}

// ChooseRealization implements the paper's open challenge of "automatically
// choosing between the two based on the characteristics of the database
// part concerned" with the heuristic the paper motivates: compact synthesis
// works while the clause group stays small and single-subject; beyond that
// the elegant merge "may even be infeasible" and the procedural coalescence
// takes over.
func ChooseRealization(clauses []Clause, maxCompactClauses int) Realization {
	if maxCompactClauses <= 0 {
		maxCompactClauses = 4
	}
	if len(clauses) > maxCompactClauses {
		return Procedural
	}
	subjects := map[string]bool{}
	for _, c := range clauses {
		subjects[c.Subject] = true
	}
	if len(subjects) > 2 {
		return Procedural
	}
	return Compact
}

// Realize renders a clause group in the given style. Compact factors common
// expressions first and joins what remains about the same subject with
// "and"; Procedural emits each clause as its own sentence, pronominalizing
// repeated subjects after their first mention.
func Realize(clauses []Clause, style Realization) string {
	if len(clauses) == 0 {
		return ""
	}
	if style == Compact {
		factored := FactorClauses(clauses)
		// Join same-subject clauses: S p1 and p2.
		var parts []string
		i := 0
		for i < len(factored) {
			j := i + 1
			preds := []string{factored[i].Predicate}
			for j < len(factored) && factored[j].Subject == factored[i].Subject {
				preds = append(preds, factored[j].Predicate)
				j++
			}
			parts = append(parts, lexicon.Sentence(factored[i].Subject+" "+lexicon.JoinAnd(preds)))
			i = j
		}
		return strings.Join(parts, " ")
	}
	var parts []string
	seen := map[string]int{}
	for _, c := range clauses {
		subj := c.Subject
		if n := seen[c.Subject]; n > 0 && subj != "" {
			subj = c.Kind.SubjectPronoun()
		}
		seen[c.Subject]++
		parts = append(parts, lexicon.Sentence(subj+" "+c.Predicate))
	}
	return strings.Join(parts, " ")
}

// Paragraph joins pre-rendered sentences with single spaces, normalizing
// whitespace.
func Paragraph(sentences ...string) string {
	var nonEmpty []string
	for _, s := range sentences {
		s = strings.TrimSpace(s)
		if s != "" {
			nonEmpty = append(nonEmpty, s)
		}
	}
	return strings.Join(nonEmpty, " ")
}
