package nlg

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestFactorBornInOn reproduces the paper's §2.2 factoring example exactly.
func TestFactorBornInOn(t *testing.T) {
	clauses := []Clause{
		{Subject: "Woody Allen", Predicate: "was born in Brooklyn, New York, USA", Kind: Person},
		{Subject: "Woody Allen", Predicate: "was born on December 1, 1935", Kind: Person},
	}
	out := FactorClauses(clauses)
	if len(out) != 1 {
		t.Fatalf("factored to %d clauses", len(out))
	}
	want := "Woody Allen was born in Brooklyn, New York, USA on December 1, 1935"
	if out[0].Text() != want {
		t.Errorf("got %q, want %q", out[0].Text(), want)
	}
}

func TestFactorKeepsDistinctSubjects(t *testing.T) {
	clauses := []Clause{
		{Subject: "A", Predicate: "was born in X"},
		{Subject: "B", Predicate: "was born in Y"},
	}
	out := FactorClauses(clauses)
	if len(out) != 2 {
		t.Fatalf("factored across subjects: %v", out)
	}
}

func TestFactorNoCommonPrefix(t *testing.T) {
	clauses := []Clause{
		{Subject: "A", Predicate: "directed three movies"},
		{Subject: "A", Predicate: "was born in X"},
	}
	out := FactorClauses(clauses)
	if len(out) != 2 {
		t.Fatalf("factored without common prefix: %v", out)
	}
}

func TestFactorNonPrepositionalUsesAnd(t *testing.T) {
	clauses := []Clause{
		{Subject: "A", Predicate: "is tall"},
		{Subject: "A", Predicate: "is Greek"},
	}
	out := FactorClauses(clauses)
	if len(out) != 1 {
		t.Fatalf("not factored: %v", out)
	}
	if out[0].Text() != "A is tall and Greek" {
		t.Errorf("got %q", out[0].Text())
	}
}

func TestFactorThreeWay(t *testing.T) {
	clauses := []Clause{
		{Subject: "A", Predicate: "was born in X"},
		{Subject: "A", Predicate: "was born on Y"},
		{Subject: "A", Predicate: "was born at Z"},
	}
	out := FactorClauses(clauses)
	if len(out) != 1 || out[0].Text() != "A was born in X on Y at Z" {
		t.Errorf("three-way factor = %v", out)
	}
}

func TestFactorEmptyAndSingle(t *testing.T) {
	if out := FactorClauses(nil); len(out) != 0 {
		t.Error("nil input")
	}
	one := []Clause{{Subject: "A", Predicate: "x"}}
	if out := FactorClauses(one); len(out) != 1 || out[0] != one[0] {
		t.Error("single clause must pass through")
	}
}

// TestMergeSplitPaperExample reproduces the §2.2 split-pattern example: the
// vapid three-sentence narrative becomes one sentence with relative clauses.
func TestMergeSplitPaperExample(t *testing.T) {
	head := "the movie M1 involves the director D1 and the actor A1"
	subs := []Clause{
		{Subject: "D1", Predicate: "was born in Italy", Kind: Person},
		{Subject: "A1", Predicate: "is Greek", Kind: Person},
	}
	got := MergeSplit(head, subs)
	want := "The movie M1 involves the director D1 who was born in Italy and the actor A1 who is Greek."
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestMergeSplitMissingSubjectTrails(t *testing.T) {
	head := "the movie M1 involves the director D1"
	subs := []Clause{
		{Subject: "D1", Predicate: "was born in Italy", Kind: Person},
		{Subject: "ZZ", Predicate: "is unrelated", Kind: Person},
	}
	got := MergeSplit(head, subs)
	if !strings.Contains(got, "who was born in Italy") {
		t.Errorf("embed lost: %q", got)
	}
	if !strings.HasSuffix(got, "ZZ is unrelated.") {
		t.Errorf("trailing clause lost: %q", got)
	}
}

func TestEmbedRelativeWordBoundary(t *testing.T) {
	// "D1" must not match inside "D11".
	head := "the director D11 and the director D1"
	got := EmbedRelative(head, Clause{Subject: "D1", Predicate: "sings", Kind: Person})
	want := "the director D11 and the director D1 who sings"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestEmbedRelativeThingPronoun(t *testing.T) {
	head := "the actor A1 plays in the movie M1"
	got := EmbedRelative(head, Clause{Subject: "M1", Predicate: "was released in 1999", Kind: Thing})
	if !strings.Contains(got, "M1 which was released in 1999") {
		t.Errorf("got %q", got)
	}
}

func TestEmbedRelativeNoMention(t *testing.T) {
	head := "nothing here"
	if got := EmbedRelative(head, Clause{Subject: "X", Predicate: "p"}); got != head {
		t.Errorf("changed head without mention: %q", got)
	}
	if got := EmbedRelative(head, Clause{Subject: "", Predicate: "p"}); got != head {
		t.Errorf("empty subject embedded: %q", got)
	}
}

func TestChooseRealization(t *testing.T) {
	small := []Clause{
		{Subject: "A", Predicate: "x"},
		{Subject: "A", Predicate: "y"},
	}
	if ChooseRealization(small, 4) != Compact {
		t.Error("small group should be compact")
	}
	big := make([]Clause, 6)
	for i := range big {
		big[i] = Clause{Subject: "A", Predicate: "x"}
	}
	if ChooseRealization(big, 4) != Procedural {
		t.Error("large group should be procedural")
	}
	manySubjects := []Clause{
		{Subject: "A", Predicate: "x"},
		{Subject: "B", Predicate: "y"},
		{Subject: "C", Predicate: "z"},
	}
	if ChooseRealization(manySubjects, 4) != Procedural {
		t.Error("many subjects should be procedural")
	}
	if ChooseRealization(small, 0) != Compact {
		t.Error("default max should apply")
	}
}

func TestRealizeCompact(t *testing.T) {
	clauses := []Clause{
		{Subject: "Woody Allen", Predicate: "was born in Brooklyn", Kind: Person},
		{Subject: "Woody Allen", Predicate: "was born on December 1, 1935", Kind: Person},
	}
	got := Realize(clauses, Compact)
	want := "Woody Allen was born in Brooklyn on December 1, 1935."
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestRealizeCompactJoinsWithAnd(t *testing.T) {
	clauses := []Clause{
		{Subject: "Match Point", Predicate: "was released in 2005", Kind: Thing},
		{Subject: "Match Point", Predicate: "belongs to the drama genre", Kind: Thing},
	}
	got := Realize(clauses, Compact)
	want := "Match Point was released in 2005 and belongs to the drama genre."
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestRealizeProceduralPronominalizes(t *testing.T) {
	clauses := []Clause{
		{Subject: "Woody Allen", Predicate: "was born in Brooklyn", Kind: Person},
		{Subject: "Woody Allen", Predicate: "directed three movies", Kind: Person},
		{Subject: "Match Point", Predicate: "was released in 2005", Kind: Thing},
		{Subject: "Match Point", Predicate: "is a drama", Kind: Thing},
	}
	got := Realize(clauses, Procedural)
	want := "Woody Allen was born in Brooklyn. They directed three movies. " +
		"Match Point was released in 2005. It is a drama."
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestRealizeEmpty(t *testing.T) {
	if Realize(nil, Compact) != "" || Realize(nil, Procedural) != "" {
		t.Error("empty input should render empty")
	}
}

func TestClauseText(t *testing.T) {
	if (Clause{Subject: "A", Predicate: "b"}).Text() != "A b" {
		t.Error("Text")
	}
	if (Clause{Predicate: "only predicate"}).Text() != "only predicate" {
		t.Error("no subject")
	}
	if (Clause{Subject: "only subject"}).Text() != "only subject" {
		t.Error("no predicate")
	}
	if (Clause{Subject: "a", Predicate: "b"}).Sentence() != "A b." {
		t.Error("Sentence")
	}
}

func TestPronouns(t *testing.T) {
	if Person.RelativePronoun() != "who" || Thing.RelativePronoun() != "which" {
		t.Error("relative pronouns")
	}
	if Person.SubjectPronoun() != "they" || Thing.SubjectPronoun() != "it" {
		t.Error("subject pronouns")
	}
}

func TestParagraph(t *testing.T) {
	got := Paragraph("One.", "", "  Two.  ", "Three.")
	if got != "One. Two. Three." {
		t.Errorf("Paragraph = %q", got)
	}
}

func TestRealizationString(t *testing.T) {
	if Compact.String() != "compact" || Procedural.String() != "procedural" {
		t.Error("Realization names")
	}
}

// Property: factoring is idempotent.
func TestFactorIdempotentProperty(t *testing.T) {
	preds := []string{"was born in X", "was born on Y", "is tall", "directed Z", "was born at W"}
	f := func(idxs []uint8) bool {
		var clauses []Clause
		for i, ix := range idxs {
			clauses = append(clauses, Clause{
				Subject:   "S" + string(rune('A'+i%2)),
				Predicate: preds[int(ix)%len(preds)],
			})
		}
		once := FactorClauses(clauses)
		twice := FactorClauses(once)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: factoring never loses content words — every word of every input
// predicate appears in the output.
func TestFactorPreservesWordsProperty(t *testing.T) {
	preds := []string{"was born in X", "was born on Y", "was born at Z"}
	f := func(n uint8) bool {
		count := int(n%3) + 1
		var clauses []Clause
		for i := 0; i < count; i++ {
			clauses = append(clauses, Clause{Subject: "S", Predicate: preds[i]})
		}
		out := FactorClauses(clauses)
		all := ""
		for _, c := range out {
			all += " " + c.Predicate
		}
		for _, c := range clauses {
			for _, w := range strings.Fields(c.Predicate) {
				if !strings.Contains(all, w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkFactorClauses(b *testing.B) {
	clauses := []Clause{
		{Subject: "Woody Allen", Predicate: "was born in Brooklyn, New York, USA"},
		{Subject: "Woody Allen", Predicate: "was born on December 1, 1935"},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FactorClauses(clauses)
	}
}

// BenchmarkNoFactoring is the ablation baseline: rendering the clauses as
// separate sentences without the common-expression merge.
func BenchmarkNoFactoring(b *testing.B) {
	clauses := []Clause{
		{Subject: "Woody Allen", Predicate: "was born in Brooklyn, New York, USA"},
		{Subject: "Woody Allen", Predicate: "was born on December 1, 1935"},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Realize(clauses, Procedural)
	}
}

func BenchmarkMergeSplit(b *testing.B) {
	head := "the movie M1 involves the director D1 and the actor A1"
	subs := []Clause{
		{Subject: "D1", Predicate: "was born in Italy", Kind: Person},
		{Subject: "A1", Predicate: "is Greek", Kind: Person},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MergeSplit(head, subs)
	}
}
