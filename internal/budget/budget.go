// Package budget carries one request's execution bounds — a context
// (deadline + cancellation) and row/memory quotas — into whatever loops
// agree to poll it. It sits below both the execution engine and the
// narration layer: the engine polls a Budget cooperatively at morsel
// boundaries, and querytotext renders the resulting CancelError as English,
// without either importing the other.
package budget

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/storage"
)

// Cancellation causes, used by CancelError.Cause and the narration layer.
const (
	CauseDeadline  = "deadline"
	CauseCancelled = "cancelled"
	CauseRowQuota  = "row quota"
	CauseMemQuota  = "memory quota"
	CauseWALStall  = "wal-stall"
)

// TickRows is how many iterations a row-at-a-time loop runs between budget
// polls — the cooperative-cancellation granularity of the naive pipeline and
// the DML pre-scans. A power of two so Tick stays a mask test.
const TickRows = 1024

// CancelError reports that a query stopped before completing: its context
// was cancelled, its deadline expired, or it exceeded a row/memory quota.
// Rows/TotalRows carry the scan progress counters the execution loops were
// already tracking, so the narration layer can say how far the query got.
type CancelError struct {
	// Cause is one of the Cause* constants above.
	Cause string
	// Elapsed is how long the query had been running when it tripped.
	Elapsed time.Duration
	// Rows counts rows examined before the stop (morsel granularity).
	Rows int64
	// TotalRows is the number of base-table rows the plan set out to visit
	// (0 when execution stopped before planning recorded it).
	TotalRows int64
	// Limit is the quota that tripped, for quota causes.
	Limit int64
	// Err is the underlying context error, when the context tripped.
	Err error
}

func (e *CancelError) Error() string {
	var b []byte
	switch e.Cause {
	case CauseDeadline:
		b = fmt.Appendf(nil, "query deadline exceeded after %s", fmtElapsed(e.Elapsed))
	case CauseCancelled:
		b = fmt.Appendf(nil, "query cancelled after %s", fmtElapsed(e.Elapsed))
	case CauseRowQuota:
		b = fmt.Appendf(nil, "query exceeded its row quota (%d rows) after %s", e.Limit, fmtElapsed(e.Elapsed))
	case CauseMemQuota:
		b = fmt.Appendf(nil, "query exceeded its memory quota (%d bytes) after %s", e.Limit, fmtElapsed(e.Elapsed))
	case CauseWALStall:
		b = fmt.Appendf(nil, "write-ahead log stalled: %v", e.Err)
	default:
		b = fmt.Appendf(nil, "query stopped after %s", fmtElapsed(e.Elapsed))
	}
	if e.Rows > 0 && e.TotalRows > 0 {
		b = fmt.Appendf(b, "; it had examined %d of %d rows", e.Rows, e.TotalRows)
	} else if e.Rows > 0 {
		b = fmt.Appendf(b, "; it had examined %d rows", e.Rows)
	}
	return string(b)
}

// Unwrap exposes the context error so errors.Is(err, context.DeadlineExceeded)
// and errors.Is(err, context.Canceled) work through a CancelError.
func (e *CancelError) Unwrap() error { return e.Err }

// fmtElapsed renders a duration at the precision narration wants ("2.0s",
// "150ms") instead of time.Duration's full nanosecond tail.
func fmtElapsed(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return d.String()
	}
}

// IsCancel reports whether err is (or wraps) a budget cancellation.
func IsCancel(err error) bool {
	var ce *CancelError
	return errors.As(err, &ce)
}

// Budget bounds one request's execution. All methods are nil-receiver safe —
// an engine without a budget polls a nil *Budget for free — and safe for
// concurrent use by parallel workers.
type Budget struct {
	ctx      context.Context
	started  time.Time
	maxRows  int64 // rows-examined quota; 0 = unbounded
	maxBytes int64 // approximate materialized-bytes quota; 0 = unbounded

	rows  atomic.Int64 // rows examined so far, advanced at morsel granularity
	bytes atomic.Int64 // approximate bytes materialized into batches
	total atomic.Int64 // base-table rows the plan set out to visit
	err   atomic.Pointer[CancelError]
}

// New builds a budget over ctx with the given quotas (0 = unbounded). It
// returns nil — the inert budget — when nothing can ever trip: a context
// that cannot be cancelled and no quotas. Execution with a nil budget is
// byte-identical to execution before budgets existed.
func New(ctx context.Context, maxRows, maxBytes int64) *Budget {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() == nil && maxRows <= 0 && maxBytes <= 0 {
		return nil
	}
	if maxRows < 0 {
		maxRows = 0
	}
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &Budget{ctx: ctx, started: time.Now(), maxRows: maxRows, maxBytes: maxBytes}
}

// Context returns the request context (context.Background() for nil budgets).
func (b *Budget) Context() context.Context {
	if b == nil {
		return context.Background()
	}
	return b.ctx
}

// Step records n more rows examined and polls the budget. The returned error
// is latched: after the first trip every poll returns the same *CancelError.
func (b *Budget) Step(n int) error {
	if b == nil {
		return nil
	}
	if ce := b.err.Load(); ce != nil {
		return ce
	}
	rows := b.rows.Add(int64(n))
	if b.maxRows > 0 && rows > b.maxRows {
		return b.trip(CauseRowQuota, b.maxRows, nil)
	}
	if err := b.ctx.Err(); err != nil {
		cause := CauseCancelled
		if errors.Is(err, context.DeadlineExceeded) {
			cause = CauseDeadline
		}
		return b.trip(cause, 0, err)
	}
	return nil
}

// Tick is Step for row-at-a-time loops: it polls once every TickRows
// iterations (including i == 0, so a loop entered after the trip stops on
// its first row).
func (b *Budget) Tick(i int) error {
	if b == nil || i&(TickRows-1) != 0 {
		return nil
	}
	return b.Step(TickRows)
}

// Grow records n more bytes materialized and polls the memory quota.
func (b *Budget) Grow(n int) error {
	if b == nil {
		return nil
	}
	if ce := b.err.Load(); ce != nil {
		return ce
	}
	if bytes := b.bytes.Add(int64(n)); b.maxBytes > 0 && bytes > b.maxBytes {
		return b.trip(CauseMemQuota, b.maxBytes, nil)
	}
	return nil
}

// Err returns the latched cancellation, or nil — parallel stages that stop
// claiming work on a tripped budget surface the cause through it.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	if ce := b.err.Load(); ce != nil {
		return ce
	}
	return nil
}

// AddTotal records base-table rows the plan set out to visit, feeding the
// "examined X of Y rows" narration.
func (b *Budget) AddTotal(n int) {
	if b != nil {
		b.total.Add(int64(n))
	}
}

// Progress returns the rows examined so far and the planned total.
func (b *Budget) Progress() (rows, total int64) {
	if b == nil {
		return 0, 0
	}
	return b.rows.Load(), b.total.Load()
}

// trip latches the first cancellation and returns it; concurrent trippers
// all observe the winner.
func (b *Budget) trip(cause string, limit int64, err error) *CancelError {
	ce := &CancelError{
		Cause:     cause,
		Elapsed:   time.Since(b.started),
		Rows:      b.rows.Load(),
		TotalRows: b.total.Load(),
		Limit:     limit,
		Err:       err,
	}
	if b.err.CompareAndSwap(nil, ce) {
		return ce
	}
	return b.err.Load()
}

// WrapWALStall converts a *storage.StallError — a WAL fsync that outlived the
// request deadline plus its grace window — into the budget's cancellation
// vocabulary, carrying the statement's progress counters into the narration.
// Every other error passes through untouched.
func (b *Budget) WrapWALStall(err error) error {
	var st *storage.StallError
	if err == nil || !errors.As(err, &st) {
		return err
	}
	ce := &CancelError{Cause: CauseWALStall, Err: err}
	if b != nil {
		ce.Elapsed = time.Since(b.started)
		ce.Rows, ce.TotalRows = b.Progress()
	}
	return ce
}
