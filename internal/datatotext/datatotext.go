// Package datatotext translates database contents into natural-language
// narratives (paper §2): it traverses the annotated schema graph from a
// point of interest, instantiates node/edge template labels over the actual
// tuples, detects the unary/join/split structural patterns, factors common
// expressions, and assembles compact (declarative) or procedural text under
// a configurable size budget with optional per-user personalization.
package datatotext

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/lexicon"
	"repro/internal/nlg"
	"repro/internal/schemagraph"
	"repro/internal/storage"
	"repro/internal/templates"
	"repro/internal/value"
)

// Relationship annotates a semantic relationship between two relations,
// possibly through a bridge relation (the paper's DIRECTED, which
// "participates in the translation process only for connecting the other
// two"). The Template introduces the relationship ("As a director, NAME's
// work includes MOVIE_LIST"); the List renders the related tuples.
type Relationship struct {
	// From is the relation whose entity anchors the sentence.
	From string
	// To is the related relation whose tuples are enumerated.
	To string
	// Via is the bridge relation connecting From and To; empty when a
	// direct foreign key links them.
	Via string
	// Template is the head phrase; its fields resolve against the From
	// tuple plus ListField.
	Template *templates.Template
	// ListField is the placeholder in Template that receives the rendered
	// list (e.g. "MOVIE_LIST").
	ListField string
	// List renders the To tuples in compact mode (title + year inline).
	List *templates.ListTemplate
	// OrderBy optionally sorts the To tuples by this attribute before
	// rendering; Desc reverses.
	OrderBy string
	Desc    bool
	// Kind is the entity kind of the From subject (pronoun choice).
	Kind nlg.EntityKind
}

// Options tunes translation.
type Options struct {
	// Style selects compact or procedural synthesis; Auto lets the
	// translator choose per clause group (the paper's open challenge,
	// decided by nlg.ChooseRealization).
	Style nlg.Realization
	// Auto overrides Style with a per-group decision.
	Auto bool
	// MaxCompactClauses bounds the compact style (see ChooseRealization).
	MaxCompactClauses int
	// MaxListItems caps enumerate lists; 0 means unlimited. The ranking
	// rule keeps the first items after OrderBy sorting (the paper's "most
	// significant tuples ... presented first and the less significant
	// tuples ... ignored").
	MaxListItems int
	// MaxSentences caps a whole-database narrative; 0 means unlimited.
	MaxSentences int
	// MaxTuplesPerRelation caps per-relation enumeration in database
	// narratives; 0 means 3.
	MaxTuplesPerRelation int
	// MinWeight prunes relations below this traversal weight in
	// whole-database narratives.
	MinWeight float64
	// Profile personalizes heading attributes and weights.
	Profile *catalog.Profile
}

// Translator translates contents of one database. It reads through a
// storage.TableSource — the live database, or a pinned MVCC snapshot via
// WithSource, which is how concurrent describe requests narrate a consistent
// committed state while writers keep committing.
type Translator struct {
	db    storage.TableSource
	graph *schemagraph.Graph
	rels  []Relationship
	opts  Options
}

// New builds a translator over db with the given annotated schema graph.
func New(db *storage.Database, graph *schemagraph.Graph, opts Options) *Translator {
	if opts.MaxTuplesPerRelation == 0 {
		opts.MaxTuplesPerRelation = 3
	}
	return &Translator{db: db, graph: graph, opts: opts}
}

// WithSource returns a translator that reads tables from src (typically a
// pinned storage.Snapshot) while sharing the schema graph, relationship
// annotations, and options. The clone is cheap; the original is not mutated.
func (t *Translator) WithSource(src storage.TableSource) *Translator {
	return &Translator{db: src, graph: t.graph, rels: t.rels, opts: t.opts}
}

// Options returns a copy of the translator's options.
func (t *Translator) Options() Options { return t.opts }

// SetOptions replaces the options. It mutates the translator in place and
// must not race with concurrent describes; concurrent callers should use
// WithOptions instead.
func (t *Translator) SetOptions(opts Options) {
	if opts.MaxTuplesPerRelation == 0 {
		opts.MaxTuplesPerRelation = 3
	}
	t.opts = opts
}

// WithOptions returns a new translator with the given options that shares
// the underlying database, schema graph, and relationship annotations. The
// clone is cheap, and because a published translator is never mutated it is
// the concurrency-safe way to personalize narration per session (§2.2
// profiles) without disturbing other sessions.
func (t *Translator) WithOptions(opts Options) *Translator {
	if opts.MaxTuplesPerRelation == 0 {
		opts.MaxTuplesPerRelation = 3
	}
	return &Translator{db: t.db, graph: t.graph, rels: t.rels, opts: opts}
}

// AddRelationship registers a relationship annotation after validating that
// its relations and join path exist.
func (t *Translator) AddRelationship(r Relationship) error {
	from := t.db.Schema().Relation(r.From)
	to := t.db.Schema().Relation(r.To)
	if from == nil || to == nil {
		return fmt.Errorf("datatotext: relationship %s→%s references unknown relations", r.From, r.To)
	}
	if r.Via != "" {
		via := t.db.Schema().Relation(r.Via)
		if via == nil {
			return fmt.Errorf("datatotext: bridge relation %q does not exist", r.Via)
		}
		if len(t.graph.JoinsBetween(r.Via, r.From)) == 0 || len(t.graph.JoinsBetween(r.Via, r.To)) == 0 {
			return fmt.Errorf("datatotext: bridge %s does not connect %s and %s", r.Via, r.From, r.To)
		}
	} else if len(t.graph.JoinsBetween(r.From, r.To)) == 0 {
		return fmt.Errorf("datatotext: no join edge between %s and %s", r.From, r.To)
	}
	if r.Template == nil {
		return fmt.Errorf("datatotext: relationship %s→%s has no template", r.From, r.To)
	}
	if r.ListField == "" {
		r.ListField = "LIST"
	}
	t.rels = append(t.rels, r)
	return nil
}

// binding builds the template binding for one tuple of rel: attribute names
// uppercased, plus REL.ATTR qualified keys, values rendered in prose form.
func bindingFor(rel *catalog.Relation, tup storage.Tuple) templates.MapBinding {
	b := make(templates.MapBinding, 2*len(rel.Attributes))
	for i, a := range rel.Attributes {
		if i >= len(tup) || tup[i].IsNull() {
			continue
		}
		v := tup[i].Prose()
		b[strings.ToUpper(a.Name)] = v
		b[strings.ToUpper(rel.Name)+"."+strings.ToUpper(a.Name)] = v
	}
	return b
}

// headingValue returns the subject string of a tuple under the profile.
func (t *Translator) headingValue(rel *catalog.Relation, tup storage.Tuple) string {
	h := t.db.Schema().HeadingFor(rel, t.opts.Profile)
	if h == nil {
		return ""
	}
	p := rel.AttrIndex(h.Name)
	if p < 0 || tup[p].IsNull() {
		return ""
	}
	return tup[p].Prose()
}

// entityKind guesses Person vs Thing from the relation concept.
func entityKind(rel *catalog.Relation) nlg.EntityKind {
	switch strings.ToLower(rel.Concept()) {
	case "actor", "director", "employee", "person", "author", "user", "manager", "student":
		return nlg.Person
	}
	return nlg.Thing
}

// attributeClauses renders the projection-edge templates of rel over tup as
// subject/predicate clauses, skipping templates whose fields are NULL.
func (t *Translator) attributeClauses(rel *catalog.Relation, tup storage.Tuple) []nlg.Clause {
	node := t.graph.Node(rel.Name)
	if node == nil {
		return nil
	}
	b := bindingFor(rel, tup)
	kind := entityKind(rel)
	// Render in annotation order (the designer's label sequence), falling
	// back to schema order for unannotated projections.
	projections := append([]*schemagraph.AttributeNode{}, node.Projections...)
	sort.SliceStable(projections, func(i, j int) bool {
		oi, oj := projections[i].Order, projections[j].Order
		if (oi == 0) != (oj == 0) {
			return oj == 0
		}
		return oi < oj
	})
	var out []nlg.Clause
	for _, p := range projections {
		if p.Template == nil || !p.Template.HasAllFields(b) {
			continue
		}
		if subj, pred, ok := p.Template.SplitSubject(b); ok {
			out = append(out, nlg.Clause{Subject: subj, Predicate: pred, Kind: kind})
			continue
		}
		// Template does not start with a field: treat the whole rendering
		// as a predicate-only clause.
		s, err := p.Template.Instantiate(b)
		if err == nil {
			out = append(out, nlg.Clause{Predicate: s, Kind: kind})
		}
	}
	return out
}

// relatedTuples collects the To-relation tuples related to the given From
// tuple under r, ordered per r.OrderBy.
func (t *Translator) relatedTuples(r Relationship, fromRel *catalog.Relation, fromTup storage.Tuple) ([]storage.Tuple, error) {
	toTbl := t.db.Table(r.To)
	if toTbl == nil {
		return nil, fmt.Errorf("datatotext: missing table %q", r.To)
	}
	toRel := toTbl.Relation()
	var out []storage.Tuple

	matchFK := func(fk catalog.ForeignKey, ownRel *catalog.Relation, ownTup storage.Tuple, other *catalog.Relation, otherTup storage.Tuple) bool {
		// fk declared by ownRel referencing other.
		for i, a := range fk.Attrs {
			av := ownTup[ownRel.AttrIndex(a)]
			bv := otherTup[other.AttrIndex(fk.RefAttrs[i])]
			if av.IsNull() || bv.IsNull() || !av.Equal(bv) {
				return false
			}
		}
		return true
	}

	if r.Via == "" {
		// Direct FK in either direction.
		fks := t.db.Schema().ForeignKeysBetween(fromRel, toRel)
		rev := t.db.Schema().ForeignKeysBetween(toRel, fromRel)
		toTbl.Scan(func(toTup storage.Tuple) bool {
			for _, fk := range fks {
				if matchFK(fk, fromRel, fromTup, toRel, toTup) {
					out = append(out, toTup)
					return true
				}
			}
			for _, fk := range rev {
				if matchFK(fk, toRel, toTup, fromRel, fromTup) {
					out = append(out, toTup)
					return true
				}
			}
			return true
		})
	} else {
		viaTbl := t.db.Table(r.Via)
		if viaTbl == nil {
			return nil, fmt.Errorf("datatotext: missing bridge table %q", r.Via)
		}
		viaRel := viaTbl.Relation()
		fkFrom := t.db.Schema().ForeignKeysBetween(viaRel, fromRel)
		fkTo := t.db.Schema().ForeignKeysBetween(viaRel, toRel)
		if len(fkFrom) == 0 || len(fkTo) == 0 {
			return nil, fmt.Errorf("datatotext: bridge %s lacks foreign keys to %s/%s", r.Via, r.From, r.To)
		}
		viaTbl.Scan(func(viaTup storage.Tuple) bool {
			if !matchFK(fkFrom[0], viaRel, viaTup, fromRel, fromTup) {
				return true
			}
			toTbl.Scan(func(toTup storage.Tuple) bool {
				if matchFK(fkTo[0], viaRel, viaTup, toRel, toTup) {
					out = append(out, toTup)
					return false
				}
				return true
			})
			return true
		})
	}

	if r.OrderBy != "" {
		p := toRel.AttrIndex(r.OrderBy)
		if p < 0 {
			return nil, fmt.Errorf("datatotext: order attribute %s.%s does not exist", r.To, r.OrderBy)
		}
		sort.SliceStable(out, func(a, b int) bool {
			va, vb := out[a][p], out[b][p]
			if va.IsNull() || vb.IsNull() {
				return vb.IsNull() && !va.IsNull()
			}
			c, err := va.Compare(vb)
			if err != nil {
				return false
			}
			if r.Desc {
				return c > 0
			}
			return c < 0
		})
	}
	if t.opts.MaxListItems > 0 && len(out) > t.opts.MaxListItems {
		out = out[:t.opts.MaxListItems]
	}
	return out, nil
}

// DescribeEntity narrates one entity identified by rel.attr = val: its
// attribute clauses followed by one sentence per registered relationship —
// the paper's Woody Allen narrative.
func (t *Translator) DescribeEntity(rel, attr string, val value.Value) (string, error) {
	relMeta, tup, err := t.findTuple(rel, attr, val)
	if err != nil {
		return "", err
	}
	return t.describeTuple(relMeta, tup)
}

func (t *Translator) describeTuple(relMeta *catalog.Relation, tup storage.Tuple) (string, error) {
	clauses := t.attributeClauses(relMeta, tup)
	style := t.opts.Style
	if t.opts.Auto {
		style = nlg.ChooseRealization(clauses, t.opts.MaxCompactClauses)
	}
	var sentences []string
	if head := nlg.Realize(clauses, style); head != "" {
		sentences = append(sentences, head)
	}

	for _, r := range t.rels {
		if !strings.EqualFold(r.From, relMeta.Name) {
			continue
		}
		s, err := t.relationshipSentences(r, relMeta, tup, style)
		if err != nil {
			return "", err
		}
		sentences = append(sentences, s...)
	}
	return nlg.Paragraph(sentences...), nil
}

// relationshipSentences renders one relationship for one entity. Compact
// mode inlines the full list template; procedural mode lists only heading
// values and then emits per-tuple attribute sentences.
func (t *Translator) relationshipSentences(r Relationship, fromRel *catalog.Relation, fromTup storage.Tuple, style nlg.Realization) ([]string, error) {
	related, err := t.relatedTuples(r, fromRel, fromTup)
	if err != nil {
		return nil, err
	}
	if len(related) == 0 {
		return nil, nil
	}
	toRel := t.db.Table(r.To).Relation()
	headBinding := bindingFor(fromRel, fromTup)

	if style == nlg.Compact && r.List != nil {
		rows := make([]templates.Binding, len(related))
		for i, tup := range related {
			rows[i] = bindingFor(toRel, tup)
		}
		listText, err := r.List.Instantiate(rows)
		if err != nil {
			return nil, err
		}
		headBinding[r.ListField] = listText
		head, err := r.Template.Instantiate(headBinding)
		if err != nil {
			return nil, err
		}
		return []string{lexicon.Sentence(head)}, nil
	}

	// Procedural: heading-only enumeration, then per-tuple clauses.
	var headings []string
	for _, tup := range related {
		if h := t.headingValue(toRel, tup); h != "" {
			headings = append(headings, h)
		}
	}
	headBinding[r.ListField] = strings.Join(headings, ", ")
	head, err := r.Template.Instantiate(headBinding)
	if err != nil {
		return nil, err
	}
	sentences := []string{lexicon.Sentence(head)}
	var clauses []nlg.Clause
	for _, tup := range related {
		clauses = append(clauses, t.attributeClauses(toRel, tup)...)
	}
	if body := nlg.Realize(clauses, nlg.Procedural); body != "" {
		sentences = append(sentences, body)
	}
	return sentences, nil
}

// findTuple locates the first tuple of rel with attr = val.
func (t *Translator) findTuple(rel, attr string, val value.Value) (*catalog.Relation, storage.Tuple, error) {
	tbl := t.db.Table(rel)
	if tbl == nil {
		return nil, nil, fmt.Errorf("datatotext: unknown relation %q", rel)
	}
	relMeta := tbl.Relation()
	p := relMeta.AttrIndex(attr)
	if p < 0 {
		return nil, nil, fmt.Errorf("datatotext: unknown attribute %s.%s", rel, attr)
	}
	var tup storage.Tuple
	tbl.Scan(func(cand storage.Tuple) bool {
		if !cand[p].IsNull() && cand[p].Equal(val) {
			tup = cand
			return false
		}
		return true
	})
	if tup == nil {
		return nil, nil, fmt.Errorf("datatotext: no %s with %s = %s", rel, attr, val.String())
	}
	return relMeta, tup, nil
}

// DescribeEntitySplit narrates one entity through the paper's split pattern
// (§2.2, Ri → Rj1, Rj2): a head sentence introduces one related entity per
// given relationship, and each related entity's own clauses embed as
// relative clauses — "The movie M1 involves the director D1 who was born in
// Italy and the actor A1 who is Greek." The relationships are given as To
// relation names and resolved against the registered annotations with the
// direction reversed (the bridge connects both ways).
func (t *Translator) DescribeEntitySplit(rel, attr string, val value.Value, toRelations []string) (string, error) {
	relMeta, tup, err := t.findTuple(rel, attr, val)
	if err != nil {
		return "", err
	}
	headVal := t.headingValue(relMeta, tup)
	if headVal == "" {
		return "", fmt.Errorf("datatotext: entity of %s has no heading value", rel)
	}
	var mentions []string
	var subs []nlg.Clause
	for _, toName := range toRelations {
		toTbl := t.db.Table(toName)
		if toTbl == nil {
			return "", fmt.Errorf("datatotext: unknown relation %q", toName)
		}
		toRel := toTbl.Relation()
		// Reuse a registered relationship in either direction to find the
		// bridge; otherwise use a direct FK.
		r := Relationship{From: relMeta.Name, To: toRel.Name}
		for _, cand := range t.rels {
			if strings.EqualFold(cand.From, toRel.Name) && strings.EqualFold(cand.To, relMeta.Name) {
				r.Via = cand.Via
			}
			if strings.EqualFold(cand.From, relMeta.Name) && strings.EqualFold(cand.To, toRel.Name) {
				r.Via = cand.Via
			}
		}
		related, err := t.relatedTuples(r, relMeta, tup)
		if err != nil {
			return "", err
		}
		if len(related) == 0 {
			continue
		}
		first := related[0]
		subjVal := t.headingValue(toRel, first)
		if subjVal == "" {
			continue
		}
		mentions = append(mentions, "the "+toRel.Concept()+" "+subjVal)
		clauses := nlg.FactorClauses(t.attributeClauses(toRel, first))
		if len(clauses) > 0 && clauses[0].Subject == subjVal {
			subs = append(subs, clauses[0])
		}
	}
	if len(mentions) == 0 {
		return "", fmt.Errorf("datatotext: %s %s has no related entities among %v", relMeta.Concept(), headVal, toRelations)
	}
	head := fmt.Sprintf("the %s %s involves %s", relMeta.Concept(), headVal, lexicon.JoinAnd(mentions))
	return nlg.MergeSplit(head, subs), nil
}

// DescribeRelation narrates up to limit tuples of one relation using its
// node and projection templates (limit 0 means the options default).
func (t *Translator) DescribeRelation(rel string, limit int) (string, error) {
	text, _, err := t.describeRelationCounted(rel, limit)
	return text, err
}

// describeRelationCounted additionally reports how many clauses the
// narrative contains, which DescribeDatabase uses for structural budgeting
// (counting periods would miscount abbreviations like "G. Loucas").
func (t *Translator) describeRelationCounted(rel string, limit int) (string, int, error) {
	tbl := t.db.Table(rel)
	if tbl == nil {
		return "", 0, fmt.Errorf("datatotext: unknown relation %q", rel)
	}
	if limit <= 0 {
		limit = t.opts.MaxTuplesPerRelation
	}
	relMeta := tbl.Relation()
	tuples := t.rankTuples(relMeta, tbl.Tuples())
	if len(tuples) > limit {
		tuples = tuples[:limit]
	}
	var clauses []nlg.Clause
	node := t.graph.Node(rel)
	kind := entityKind(relMeta)
	for _, tup := range tuples {
		b := bindingFor(relMeta, tup)
		if node != nil && node.Template != nil && node.Template.HasAllFields(b) {
			if subj, pred, ok := node.Template.SplitSubject(b); ok {
				clauses = append(clauses, nlg.Clause{Subject: subj, Predicate: pred, Kind: kind})
				continue
			}
			if s, err := node.Template.Instantiate(b); err == nil {
				clauses = append(clauses, nlg.Clause{Predicate: s, Kind: kind})
				continue
			}
		}
		// Fall back to the heading value alone.
		if h := t.headingValue(relMeta, tup); h != "" {
			clauses = append(clauses, nlg.Clause{
				Predicate: fmt.Sprintf("There is %s named %s", lexicon.WithArticle(relMeta.Concept()), h),
				Kind:      kind,
			})
		}
	}
	style := t.opts.Style
	if t.opts.Auto {
		style = nlg.ChooseRealization(clauses, t.opts.MaxCompactClauses)
	}
	return nlg.Realize(clauses, style), len(clauses), nil
}

// rankTuples orders tuples for enumeration: tuples with more non-NULL
// significant (weighted) attributes first, ties broken by heading value for
// determinism — a simple instance of the paper's tuple ranking.
func (t *Translator) rankTuples(rel *catalog.Relation, tuples []storage.Tuple) []storage.Tuple {
	type ranked struct {
		tup   storage.Tuple
		score float64
		key   string
	}
	rs := make([]ranked, len(tuples))
	for i, tup := range tuples {
		score := 0.0
		for j, a := range rel.Attributes {
			if !tup[j].IsNull() {
				score += t.db.Schema().AttrWeightFor(rel, a, t.opts.Profile)
			}
		}
		rs[i] = ranked{tup: tup, score: score, key: t.headingValue(rel, tup)}
	}
	sort.SliceStable(rs, func(a, b int) bool {
		if rs[a].score != rs[b].score {
			return rs[a].score > rs[b].score
		}
		return rs[a].key < rs[b].key
	})
	out := make([]storage.Tuple, len(rs))
	for i := range rs {
		out[i] = rs[i].tup
	}
	return out
}

// DescribeDatabase narrates the whole database: a weight-ordered DFS from
// start visits each non-bridge relation and narrates its top tuples, also
// rendering entity relationships for the start relation's top tuples. The
// sentence budget (Options.MaxSentences) and weight floor
// (Options.MinWeight) implement the paper's structural size control.
func (t *Translator) DescribeDatabase(start string) (string, error) {
	skip := map[string]bool{}
	for _, n := range t.graph.Nodes() {
		w := t.db.Schema().WeightFor(n.Rel, t.opts.Profile)
		if t.opts.MinWeight > 0 && w < t.opts.MinWeight {
			skip[strings.ToLower(n.Rel.Name)] = true
		}
	}
	tr, err := t.graph.DFS(start, skip)
	if err != nil {
		return "", err
	}
	budget := t.opts.MaxSentences
	var parts []string
	for _, node := range tr.Order {
		if node.Rel.Bridge {
			continue
		}
		text, clauses, err := t.describeRelationCounted(node.Rel.Name, 0)
		if err != nil {
			return "", err
		}
		if text == "" {
			continue
		}
		if budget > 0 && clauses > budget {
			break
		}
		if budget > 0 {
			budget -= clauses
		}
		parts = append(parts, text)
	}
	return nlg.Paragraph(parts...), nil
}
