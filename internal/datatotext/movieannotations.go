package datatotext

import (
	"fmt"

	"repro/internal/nlg"
	"repro/internal/schemagraph"
	"repro/internal/storage"
	"repro/internal/templates"
)

// AnnotateMovieGraph installs the paper's template labels (§2.2) on a schema
// graph built from the Fig. 1 movie schema. These are the designer-assigned
// labels the paper describes; they reproduce its narratives verbatim:
//
//	DNAME + " was born" + " in " + BLOCATION
//	DNAME + " was born" + " on " + BDATE
//	TITLE + " (" + YEAR + ")"
//	"As a director, " + DNAME + "'s work includes " + MOVIE_LIST
func AnnotateMovieGraph(g *schemagraph.Graph) error {
	steps := []struct {
		kind string
		a, b string
		tpl  string
	}{
		// Relation node labels (used when a relation is rendered alone).
		{"rel", "MOVIES", "", `TITLE + " (" + YEAR + ")"`},
		{"rel", "DIRECTOR", "", `NAME + " is a director"`},
		{"rel", "ACTOR", "", `NAME + " is an actor"`},
		{"rel", "GENRE", "", `GENRE + " is one of the collection's genres"`},
		// Projection-edge labels.
		{"proj", "DIRECTOR", "blocation", `NAME + " was born" + " in " + BLOCATION`},
		{"proj", "DIRECTOR", "bdate", `NAME + " was born" + " on " + BDATE`},
		{"proj", "MOVIES", "year", `TITLE + " was released in " + YEAR`},
		{"proj", "CAST", "role", `ROLE + " is a role in the movie"`},
	}
	for _, s := range steps {
		tpl, err := templates.Parse(s.tpl)
		if err != nil {
			return fmt.Errorf("datatotext: movie annotation %s %s.%s: %v", s.kind, s.a, s.b, err)
		}
		switch s.kind {
		case "rel":
			err = g.AnnotateRelation(s.a, tpl)
		case "proj":
			err = g.AnnotateProjection(s.a, s.b, tpl)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// MovieRelationships returns the relationship annotations of the movie
// schema: director→movies through DIRECTED (the paper's MOVIE_LIST
// example), actor→movies through CAST, and movie→genre.
func MovieRelationships() []Relationship {
	return []Relationship{
		{
			From: "DIRECTOR", To: "MOVIES", Via: "DIRECTED",
			Template: templates.MustParse(
				`"As a director, " + NAME + "'s work includes " + MOVIE_LIST`),
			ListField: "MOVIE_LIST",
			List: templates.MustParseList(
				`[i < arityOf(TITLE)] { TITLE[i] + " (" + YEAR[i] + "), " } ` +
					`[i = arityOf(TITLE)] { "and " + TITLE[i] + " (" + YEAR[i] + ")." }`),
			OrderBy: "year", Desc: true,
			Kind: nlg.Person,
		},
		{
			From: "ACTOR", To: "MOVIES", Via: "CAST",
			Template: templates.MustParse(
				`"As an actor, " + NAME + " plays in " + MOVIE_LIST`),
			ListField: "MOVIE_LIST",
			List: templates.MustParseList(
				`[i < arityOf(TITLE)] { TITLE[i] + " (" + YEAR[i] + "), " } ` +
					`[i = arityOf(TITLE)] { "and " + TITLE[i] + " (" + YEAR[i] + ")." }`),
			OrderBy: "year", Desc: true,
			Kind: nlg.Person,
		},
		{
			From: "MOVIES", To: "GENRE", Via: "",
			Template: templates.MustParse(
				`"The " + GENRE_LIST + " movie " + TITLE + " belongs to the collection"`),
			ListField: "GENRE_LIST",
			List: templates.MustParseList(
				`[i < arityOf(GENRE)] { GENRE[i] + "/" } [i = arityOf(GENRE)] { GENRE[i] }`),
			OrderBy: "genre",
			Kind:    nlg.Thing,
		},
	}
}

// NewMovieTranslator wires a fully annotated translator for a movie-schema
// database: graph annotations plus relationship annotations.
func NewMovieTranslator(db *storage.Database, opts Options) (*Translator, error) {
	g, err := schemagraph.Build(db.Schema())
	if err != nil {
		return nil, err
	}
	if err := AnnotateMovieGraph(g); err != nil {
		return nil, err
	}
	t := New(db, g, opts)
	for _, r := range MovieRelationships() {
		if err := t.AddRelationship(r); err != nil {
			return nil, err
		}
	}
	return t, nil
}
