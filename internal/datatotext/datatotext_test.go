package datatotext

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/dataset"
	"repro/internal/nlg"
	"repro/internal/schemagraph"
	"repro/internal/storage"
	"repro/internal/templates"
	"repro/internal/value"
)

func movieTranslator(t *testing.T, opts Options) *Translator {
	t.Helper()
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewMovieTranslator(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestWoodyAllenCompactNarrative reproduces the paper's §2.2 compact
// narrative verbatim:
//
//	"Woody Allen was born in Brooklyn, New York, USA on December 1, 1935.
//	 As a director, Woody Allen's work includes Match Point (2005),
//	 Melinda and Melinda (2004), and Anything Else (2003)."
func TestWoodyAllenCompactNarrative(t *testing.T) {
	tr := movieTranslator(t, Options{Style: nlg.Compact})
	got, err := tr.DescribeEntity("DIRECTOR", "name", value.NewText("Woody Allen"))
	if err != nil {
		t.Fatal(err)
	}
	want := "Woody Allen was born in Brooklyn, New York, USA on December 1, 1935. " +
		"As a director, Woody Allen's work includes Match Point (2005), " +
		"Melinda and Melinda (2004), and Anything Else (2003)."
	if got != want {
		t.Errorf("compact narrative:\n got: %q\nwant: %q", got, want)
	}
}

// TestWoodyAllenProceduralNarrative reproduces the paper's procedural
// variant: the list without years, followed by one release sentence per
// movie.
func TestWoodyAllenProceduralNarrative(t *testing.T) {
	tr := movieTranslator(t, Options{Style: nlg.Procedural})
	got, err := tr.DescribeEntity("DIRECTOR", "name", value.NewText("Woody Allen"))
	if err != nil {
		t.Fatal(err)
	}
	want := "Woody Allen was born in Brooklyn, New York, USA. " +
		"They was born on December 1, 1935. " +
		"As a director, Woody Allen's work includes Match Point, Melinda and Melinda, Anything Else. " +
		"Match Point was released in 2005. " +
		"Melinda and Melinda was released in 2004. " +
		"Anything Else was released in 2003."
	if got != want {
		t.Errorf("procedural narrative:\n got: %q\nwant: %q", got, want)
	}
}

func TestAutoRealizationPicksCompactForDirector(t *testing.T) {
	tr := movieTranslator(t, Options{Auto: true})
	got, err := tr.DescribeEntity("DIRECTOR", "name", value.NewText("Woody Allen"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "Match Point (2005)") {
		t.Errorf("auto mode should choose compact here: %q", got)
	}
}

func TestActorRelationship(t *testing.T) {
	tr := movieTranslator(t, Options{Style: nlg.Compact})
	got, err := tr.DescribeEntity("ACTOR", "name", value.NewText("Brad Pitt"))
	if err != nil {
		t.Fatal(err)
	}
	want := "As an actor, Brad Pitt plays in Galaxy at War (2002), and Star Raiders (1999)."
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestMovieGenreRelationship(t *testing.T) {
	tr := movieTranslator(t, Options{Style: nlg.Compact})
	got, err := tr.DescribeEntity("MOVIES", "title", value.NewText("The Matrix"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "The Matrix was released in 1999.") {
		t.Errorf("missing year clause: %q", got)
	}
	if !strings.Contains(got, "action/sci-fi movie The Matrix") {
		t.Errorf("missing genre list: %q", got)
	}
}

func TestDescribeEntityErrors(t *testing.T) {
	tr := movieTranslator(t, Options{})
	if _, err := tr.DescribeEntity("NOPE", "x", value.NewInt(1)); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := tr.DescribeEntity("MOVIES", "nope", value.NewInt(1)); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := tr.DescribeEntity("MOVIES", "id", value.NewInt(999999)); err == nil {
		t.Error("missing entity accepted")
	}
}

func TestMaxListItems(t *testing.T) {
	tr := movieTranslator(t, Options{Style: nlg.Compact, MaxListItems: 2})
	got, err := tr.DescribeEntity("DIRECTOR", "name", value.NewText("Woody Allen"))
	if err != nil {
		t.Fatal(err)
	}
	// Ranked by year desc, the two most recent movies survive the cut.
	if !strings.Contains(got, "Match Point (2005)") || !strings.Contains(got, "Melinda and Melinda (2004)") {
		t.Errorf("top-2 missing: %q", got)
	}
	if strings.Contains(got, "Anything Else") {
		t.Errorf("list not truncated: %q", got)
	}
}

func TestDescribeRelation(t *testing.T) {
	tr := movieTranslator(t, Options{Style: nlg.Procedural, MaxTuplesPerRelation: 2})
	got, err := tr.DescribeRelation("DIRECTOR", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two director sentences.
	if n := strings.Count(got, "is a director"); n != 2 {
		t.Errorf("expected 2 director clauses, got %d: %q", n, got)
	}
	if _, err := tr.DescribeRelation("NOPE", 1); err == nil {
		t.Error("unknown relation accepted")
	}
}

func TestDescribeDatabaseBudget(t *testing.T) {
	tr := movieTranslator(t, Options{Style: nlg.Procedural, MaxSentences: 4, MaxTuplesPerRelation: 2})
	got, err := tr.DescribeDatabase("MOVIES")
	if err != nil {
		t.Fatal(err)
	}
	if got == "" {
		t.Error("empty narrative")
	}
	// Unbudgeted narrative is strictly longer.
	tr2 := movieTranslator(t, Options{Style: nlg.Procedural, MaxTuplesPerRelation: 5})
	full, err := tr2.DescribeDatabase("MOVIES")
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= len(got) {
		t.Errorf("budget had no effect: %d vs %d", len(full), len(got))
	}
}

func TestDescribeDatabaseSkipsBridges(t *testing.T) {
	tr := movieTranslator(t, Options{Style: nlg.Procedural})
	got, err := tr.DescribeDatabase("DIRECTOR")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(got, "DIRECTED") || strings.Contains(got, "is a role in the movie") {
		t.Errorf("bridge relation content leaked: %q", got)
	}
}

func TestMinWeightPruning(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	// GENRE has default weight 1; set floor above it but below MOVIES (3).
	tr, err := NewMovieTranslator(db, Options{Style: nlg.Procedural, MinWeight: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.DescribeDatabase("MOVIES")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(got, "movie belongs to the collection") {
		t.Errorf("pruned relation narrated: %q", got)
	}
}

func TestPersonalizationProfile(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	p := catalog.NewProfile("year-first")
	p.HeadingOverride["MOVIES"] = "year"
	if err := db.Schema().AddProfile(p); err != nil {
		t.Fatal(err)
	}
	tr, err := NewMovieTranslator(db, Options{Style: nlg.Procedural, Profile: p})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.DescribeEntity("DIRECTOR", "name", value.NewText("Woody Allen"))
	if err != nil {
		t.Fatal(err)
	}
	// Procedural listing enumerates heading values — years, not titles.
	if !strings.Contains(got, "work includes 2005, 2004, 2003") {
		t.Errorf("profile heading override ignored: %q", got)
	}
}

func TestAddRelationshipValidation(t *testing.T) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		t.Fatal(err)
	}
	g, err := schemagraph.Build(db.Schema())
	if err != nil {
		t.Fatal(err)
	}
	tr := New(db, g, Options{})
	tpl := templates.MustParse(`"x" + LIST`)
	cases := []Relationship{
		{From: "NOPE", To: "MOVIES", Template: tpl},
		{From: "DIRECTOR", To: "NOPE", Template: tpl},
		{From: "DIRECTOR", To: "MOVIES", Via: "NOPE", Template: tpl},
		{From: "DIRECTOR", To: "GENRE", Via: "CAST", Template: tpl}, // CAST doesn't connect them
		{From: "DIRECTOR", To: "MOVIES", Template: tpl},             // no direct FK
		{From: "DIRECTOR", To: "MOVIES", Via: "DIRECTED"},           // no template
	}
	for i, r := range cases {
		if err := tr.AddRelationship(r); err == nil {
			t.Errorf("case %d accepted: %+v", i, r)
		}
	}
	ok := Relationship{From: "DIRECTOR", To: "MOVIES", Via: "DIRECTED", Template: tpl}
	if err := tr.AddRelationship(ok); err != nil {
		t.Errorf("valid relationship rejected: %v", err)
	}
}

func TestRelationshipOrderByValidation(t *testing.T) {
	db, _ := dataset.CuratedMovieDB()
	g, _ := schemagraph.Build(db.Schema())
	_ = AnnotateMovieGraph(g)
	tr := New(db, g, Options{Style: nlg.Compact})
	bad := Relationship{
		From: "DIRECTOR", To: "MOVIES", Via: "DIRECTED",
		Template:  templates.MustParse(`NAME + " made " + L`),
		ListField: "L",
		List:      templates.MustParseList(`[i < arityOf(TITLE)] { TITLE[i] }`),
		OrderBy:   "nope",
	}
	if err := tr.AddRelationship(bad); err != nil {
		t.Fatal(err) // OrderBy validated lazily at render time
	}
	if _, err := tr.DescribeEntity("DIRECTOR", "name", value.NewText("Woody Allen")); err == nil {
		t.Error("bad OrderBy attribute accepted at render time")
	}
}

func TestEmptyRelationshipProducesNothing(t *testing.T) {
	db, _ := dataset.CuratedMovieDB()
	tr, err := NewMovieTranslator(db, Options{Style: nlg.Compact})
	if err != nil {
		t.Fatal(err)
	}
	// Sofia Ferrara directs movies; Merian Cooper directs only King Kong
	// 1933. A director with no movies: insert one.
	if err := db.Insert("DIRECTOR", storage.Tuple{
		value.NewInt(99), value.NewText("No Films Yet"), value.NewNull(), value.NewNull(),
	}); err != nil {
		t.Fatal(err)
	}
	got, err := tr.DescribeEntity("DIRECTOR", "name", value.NewText("No Films Yet"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(got, "work includes") {
		t.Errorf("empty relationship rendered: %q", got)
	}
}

func TestNullAttributesSkipTemplates(t *testing.T) {
	db, _ := dataset.CuratedMovieDB()
	if err := db.Insert("DIRECTOR", storage.Tuple{
		value.NewInt(98), value.NewText("Partial Person"), value.NewNull(), value.NewText("Somewhere"),
	}); err != nil {
		t.Fatal(err)
	}
	tr, err := NewMovieTranslator(db, Options{Style: nlg.Compact})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.DescribeEntity("DIRECTOR", "name", value.NewText("Partial Person"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "was born in Somewhere") {
		t.Errorf("present attribute lost: %q", got)
	}
	if strings.Contains(got, "on ") && strings.Contains(got, "born in Somewhere on") {
		t.Errorf("NULL bdate rendered: %q", got)
	}
}

func TestRankTuplesDeterminism(t *testing.T) {
	tr := movieTranslator(t, Options{Style: nlg.Procedural, MaxTuplesPerRelation: 3})
	a, err := tr.DescribeRelation("MOVIES", 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.DescribeRelation("MOVIES", 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("ranking not deterministic")
	}
}

func TestSetOptions(t *testing.T) {
	tr := movieTranslator(t, Options{Style: nlg.Compact})
	opts := tr.Options()
	opts.Style = nlg.Procedural
	tr.SetOptions(opts)
	if tr.Options().Style != nlg.Procedural {
		t.Error("SetOptions did not apply")
	}
	if tr.Options().MaxTuplesPerRelation == 0 {
		t.Error("default MaxTuplesPerRelation not applied")
	}
}

func BenchmarkWoodyAllenCompact(b *testing.B) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		b.Fatal(err)
	}
	tr, err := NewMovieTranslator(db, Options{Style: nlg.Compact})
	if err != nil {
		b.Fatal(err)
	}
	key := value.NewText("Woody Allen")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.DescribeEntity("DIRECTOR", "name", key); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWoodyAllenProcedural(b *testing.B) {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		b.Fatal(err)
	}
	tr, err := NewMovieTranslator(db, Options{Style: nlg.Procedural})
	if err != nil {
		b.Fatal(err)
	}
	key := value.NewText("Woody Allen")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.DescribeEntity("DIRECTOR", "name", key); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDescribeDatabase(b *testing.B) {
	db, err := dataset.GenerateMovieDB(dataset.GenConfig{Seed: 5, Movies: 200, Actors: 80, Directors: 10, CastPerMovie: 3, GenresPerMovie: 2})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := NewMovieTranslator(db, Options{Style: nlg.Procedural, MaxSentences: 30})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.DescribeDatabase("MOVIES"); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDescribeEntitySplit exercises the §2.2 split pattern on live data:
// a movie introduces its director and an actor, with the director's clauses
// embedded as a relative clause.
func TestDescribeEntitySplit(t *testing.T) {
	tr := movieTranslator(t, Options{Style: nlg.Compact})
	got, err := tr.DescribeEntitySplit("MOVIES", "title", value.NewText("Match Point"),
		[]string{"DIRECTOR", "ACTOR"})
	if err != nil {
		t.Fatal(err)
	}
	want := "The movie Match Point involves the director Woody Allen " +
		"who was born in Brooklyn, New York, USA on December 1, 1935 " +
		"and the actor Scarlett Johansson."
	if got != want {
		t.Errorf("split narrative:\n got: %q\nwant: %q", got, want)
	}
}

func TestDescribeEntitySplitErrors(t *testing.T) {
	tr := movieTranslator(t, Options{Style: nlg.Compact})
	if _, err := tr.DescribeEntitySplit("NOPE", "x", value.NewInt(1), nil); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := tr.DescribeEntitySplit("MOVIES", "title", value.NewText("Match Point"),
		[]string{"NOPE"}); err == nil {
		t.Error("unknown target relation accepted")
	}
	// A movie with no cast or director yields an informative error.
	db, _ := dataset.CuratedMovieDB()
	if err := db.Insert("MOVIES", storage.Tuple{
		value.NewInt(900), value.NewText("Orphan Film"), value.NewInt(2020),
	}); err != nil {
		t.Fatal(err)
	}
	tr2, err := NewMovieTranslator(db, Options{Style: nlg.Compact})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr2.DescribeEntitySplit("MOVIES", "title", value.NewText("Orphan Film"),
		[]string{"DIRECTOR", "ACTOR"}); err == nil {
		t.Error("entity without related tuples accepted")
	}
}
