// Queryverify walks the paper's entire query corpus (the §3.1 EMP example
// plus Q1–Q9) through the verification loop: for each query it prints the
// SQL, the difficulty classification with its structural evidence, any
// rewrites applied, and the natural-language translation — exactly the
// feedback the paper argues a user should see before execution.
//
//	go run ./examples/queryverify
package main

import (
	"fmt"
	"log"
	"strings"

	talkback "repro"
	"repro/internal/core"
	"repro/internal/sqlparser"
)

func main() {
	movieSys, err := talkback.NewMovieSystem()
	if err != nil {
		log.Fatal(err)
	}
	empSys, err := talkback.NewEmpSystem()
	if err != nil {
		log.Fatal(err)
	}

	for _, label := range sqlparser.PaperQueryOrder {
		var sys *core.System
		if label == "Q0" {
			sys = empSys
		} else {
			sys = movieSys
		}
		sql := sqlparser.PaperQueries[label]
		tr, err := sys.DescribeQuery(sql)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%s %s\n", label, strings.Repeat("-", 70-len(label)))
		fmt.Println(compactSQL(sql))
		fmt.Printf("  category:    %s", tr.Class.Category)
		if tr.Class.Subtype.String() != "none" {
			fmt.Printf(" (%s)", tr.Class.Subtype)
		}
		fmt.Println()
		for _, e := range tr.Class.Evidence {
			fmt.Printf("  evidence:    %s\n", e)
		}
		for _, n := range tr.Notes {
			fmt.Printf("  rewrite:     %s\n", n)
		}
		style := "declarative"
		if !tr.Declarative {
			style = "procedural"
		}
		fmt.Printf("  style:       %s\n", style)
		fmt.Printf("  translation: %s\n", tr.Text)
		fmt.Printf("  paper says:  %s\n\n", sqlparser.PaperTranslations[label])
	}
}

func compactSQL(sql string) string {
	fields := strings.Fields(sql)
	out := "  " + strings.Join(fields, " ")
	if len(out) > 100 {
		out = out[:97] + "..."
	}
	return out
}
