// Voice demonstrates the §2.1 accessibility scenario end to end with the
// simulated ASR/TTS substrate: spoken questions are recognized into SQL,
// the system echoes its understanding, executes, narrates the answer, and
// "speaks" it as a timed event stream.
//
//	go run ./examples/voice
package main

import (
	"fmt"
	"log"

	talkback "repro"
	"repro/internal/speech"
)

func main() {
	sys, err := talkback.NewMovieSystem()
	if err != nil {
		log.Fatal(err)
	}
	session := sys.NewVoiceSession(talkback.MovieGrammar())

	utterances := []string{
		"Which movies does Brad Pitt play in?",
		"Who directed Match Point?",
		"Tell me about Woody Allen",
		"Which actors played in The Matrix?",
		"How many movies were released in 1999?",
		"Which movies does Zz Topp play in?", // empty answer → spoken feedback
	}
	for _, u := range utterances {
		fmt.Printf("User:   %q\n", u)
		turn, err := session.Ask(u)
		if err != nil {
			fmt.Printf("System: (did not understand: %v)\n\n", err)
			continue
		}
		fmt.Printf("Heard:  %s\n", turn.Verification)
		fmt.Printf("Speaks: %s\n", turn.Answer)
		fmt.Printf("        [%d words, %.1fs of synthesized speech]\n\n",
			countWords(turn.Events), float64(speech.DurationMs(turn.Events))/1000)
	}
}

func countWords(events []speech.Event) int {
	n := 0
	for _, e := range events {
		if !e.Pause {
			n++
		}
	}
	return n
}
