// Quickstart: open the paper's movie database, verify a query in natural
// language before running it, then run it and listen to the answer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	talkback "repro"
)

func main() {
	sys, err := talkback.NewMovieSystem()
	if err != nil {
		log.Fatal(err)
	}

	// The paper's Q1: which movies does Brad Pitt play in?
	sql := `select m.title
	        from MOVIES m, CAST c, ACTOR a
	        where m.id = c.mid and c.aid = a.id and a.name = 'Brad Pitt'`

	// Step 1 — verification: the DBMS talks the query back before running
	// it, so the user can confirm it means what they intended (§3.1).
	verification, err := sys.DescribeQuery(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("You asked:     ", verification.Text)
	fmt.Println("Query category:", verification.Class.Category)

	// Step 2 — execution with a narrated answer.
	resp, err := sys.Ask(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Answer:        ", resp.Answer)

	// Step 3 — content narration: describe an entity (§2.2).
	narrative, err := sys.DescribeEntity("DIRECTOR", "name", talkback.Text("Woody Allen"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAbout Woody Allen:")
	fmt.Println(narrative)
}
