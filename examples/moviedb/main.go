// Moviedb demonstrates content translation (paper §2) on the movie
// database: the Woody Allen narrative in both synthesis styles, a budgeted
// whole-database summary, a schema narration, and a personalized narrative
// through a user profile.
//
//	go run ./examples/moviedb
package main

import (
	"fmt"
	"log"

	talkback "repro"
	"repro/internal/dataset"
	"repro/internal/datatotext"
	"repro/internal/nlg"
)

func main() {
	db, err := dataset.CuratedMovieDB()
	if err != nil {
		log.Fatal(err)
	}

	// Compact (declarative) style: the paper's flagship narrative.
	compact, err := datatotext.NewMovieTranslator(db, datatotext.Options{Style: nlg.Compact})
	if err != nil {
		log.Fatal(err)
	}
	text, err := compact.DescribeEntity("DIRECTOR", "name", talkback.Text("Woody Allen"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— Compact narrative (§2.2):")
	fmt.Println(text)

	// Procedural style: the paper's simpler coalescence of sentences.
	procedural, err := datatotext.NewMovieTranslator(db, datatotext.Options{Style: nlg.Procedural})
	if err != nil {
		log.Fatal(err)
	}
	text, err = procedural.DescribeEntity("DIRECTOR", "name", talkback.Text("Woody Allen"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n— Procedural narrative:")
	fmt.Println(text)

	// Auto mode decides per clause group (the paper's open challenge).
	auto, err := datatotext.NewMovieTranslator(db, datatotext.Options{Auto: true})
	if err != nil {
		log.Fatal(err)
	}
	text, err = auto.DescribeEntity("ACTOR", "name", talkback.Text("Brad Pitt"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n— Auto-chosen style for an actor:")
	fmt.Println(text)

	// Split pattern on live data (§2.2): the movie introduces its director
	// and an actor, with the director's clauses embedded relatively.
	text, err = compact.DescribeEntitySplit("MOVIES", "title",
		talkback.Text("Match Point"), []string{"DIRECTOR", "ACTOR"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n— Split-pattern narrative for a movie:")
	fmt.Println(text)

	// Whole-database summary under a sentence budget (§2.2 size control).
	budgeted, err := datatotext.NewMovieTranslator(db, datatotext.Options{
		Style: nlg.Procedural, MaxSentences: 8, MaxTuplesPerRelation: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	text, err = budgeted.DescribeDatabase("MOVIES")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n— Budgeted database summary (8 clauses):")
	fmt.Println(text)

	// Personalization (§2.2): a year-oriented profile changes the heading
	// attribute of MOVIES, so lists enumerate years instead of titles.
	p := talkback.NewProfile("year-fan")
	p.HeadingOverride["MOVIES"] = "year"
	if err := db.Schema().AddProfile(p); err != nil {
		log.Fatal(err)
	}
	personal, err := datatotext.NewMovieTranslator(db, datatotext.Options{
		Style: nlg.Procedural, Profile: p,
	})
	if err != nil {
		log.Fatal(err)
	}
	text, err = personal.DescribeEntity("DIRECTOR", "name", talkback.Text("Woody Allen"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n— Personalized narrative (year-fan profile):")
	fmt.Println(text)

	// Schema narration (§2.1).
	sys, err := talkback.New(db, talkback.MovieConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n— Schema narration:")
	fmt.Println(sys.DescribeSchema())
}
