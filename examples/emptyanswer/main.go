// Emptyanswer demonstrates the §3.1 feedback scenarios: diagnosing why a
// query returns nothing (which predicates are responsible, alone or in
// combination) and why another returns very many rows.
//
//	go run ./examples/emptyanswer
package main

import (
	"fmt"
	"log"

	talkback "repro"
	"repro/internal/dataset"
)

func main() {
	sys, err := talkback.NewMovieSystem()
	if err != nil {
		log.Fatal(err)
	}

	// Case 1: one predicate alone kills the answer.
	ask(sys, `select m.title from MOVIES m, CAST c, ACTOR a
		where m.id = c.mid and c.aid = a.id and a.name = 'Nobody Unknown'`)

	// Case 2: each predicate is satisfiable, the combination is not —
	// Brad Pitt plays only in 1999/2002 movies.
	ask(sys, `select m.title from MOVIES m, CAST c, ACTOR a
		where m.id = c.mid and c.aid = a.id
		and a.name = 'Brad Pitt' and m.year = 2005`)

	// Case 3: a large answer on a generated database.
	bigDB, err := dataset.GenerateMovieDB(dataset.GenConfig{
		Seed: 4, Movies: 200, Actors: 60, Directors: 10, CastPerMovie: 3, GenresPerMovie: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := talkback.MovieConfig()
	cfg.LargeThreshold = 50
	bigSys, err := talkback.New(bigDB, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ask(bigSys, "select m.title, c.role from MOVIES m, CAST c where m.id = c.mid and m.year > 1950")
}

func ask(sys *talkback.System, sql string) {
	resp, err := sys.Ask(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Query:    %s\n", resp.Verification.Text)
	fmt.Printf("Answer:   %s\n", clip(resp.Answer, 120))
	if resp.Feedback != "" {
		fmt.Printf("Feedback: %s\n", resp.Feedback)
	}
	fmt.Println()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
